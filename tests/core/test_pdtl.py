"""Unit and integration tests for the PDTL framework (master/worker pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.inmemory import (
    forward_count,
    forward_list,
    per_vertex_triangle_counts,
)
from repro.core.config import PDTLConfig
from repro.core.load_balance import ranges_cover_exactly
from repro.core.pdtl import PDTLRunner
from repro.errors import ConfigurationError
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, rmat, watts_strogatz


@pytest.fixture(scope="module")
def medium_graph() -> CSRGraph:
    return CSRGraph.from_edgelist(rmat(8, edge_factor=8, seed=21))


@pytest.fixture(scope="module")
def medium_expected(medium_graph) -> int:
    return forward_count(medium_graph)


class TestCorrectnessAcrossConfigurations:
    @pytest.mark.parametrize(
        "nodes,procs",
        [(1, 1), (1, 2), (1, 4), (2, 1), (2, 2), (3, 2), (4, 4)],
    )
    def test_count_is_configuration_independent(
        self, medium_graph, medium_expected, nodes, procs
    ):
        config = PDTLConfig(
            num_nodes=nodes, procs_per_node=procs, memory_per_proc="1MB"
        )
        result = PDTLRunner(config).run(medium_graph)
        assert result.triangles == medium_expected

    def test_small_memory_matches(self, medium_graph, medium_expected):
        config = PDTLConfig(
            num_nodes=2, procs_per_node=2, memory_per_proc=128 * 1024, block_size=1024
        )
        assert PDTLRunner(config).run(medium_graph).triangles == medium_expected

    def test_naive_split_matches_balanced(self, medium_graph, medium_expected):
        balanced = PDTLConfig(num_nodes=2, procs_per_node=2, load_balanced=True)
        naive = PDTLConfig(num_nodes=2, procs_per_node=2, load_balanced=False)
        assert PDTLRunner(balanced).run(medium_graph).triangles == medium_expected
        assert PDTLRunner(naive).run(medium_graph).triangles == medium_expected

    def test_threads_backend_matches(self, medium_graph, medium_expected):
        config = PDTLConfig(num_nodes=2, procs_per_node=2, memory_per_proc="1MB")
        result = PDTLRunner(config, backend="threads").run(medium_graph)
        assert result.triangles == medium_expected

    def test_sequential_orientation_matches(self, medium_graph, medium_expected):
        config = PDTLConfig(
            num_nodes=1, procs_per_node=2, parallel_orientation=False
        )
        assert PDTLRunner(config).run(medium_graph).triangles == medium_expected


class TestSinkKinds:
    def test_listing_matches_reference(self):
        graph = CSRGraph.from_edgelist(watts_strogatz(60, k=6, p=0.1, seed=2))
        config = PDTLConfig(num_nodes=2, procs_per_node=2, count_only=False)
        result = PDTLRunner(config).run(graph, sink_kind="list")
        listed = {t.as_vertex_set() for t in result.triangle_list}
        assert listed == forward_list(graph)
        assert len(result.triangle_list) == result.triangles

    def test_per_vertex_matches_reference(self):
        graph = CSRGraph.from_edgelist(rmat(6, edge_factor=8, seed=3))
        config = PDTLConfig(num_nodes=1, procs_per_node=3)
        result = PDTLRunner(config).run(graph, sink_kind="per-vertex")
        np.testing.assert_array_equal(
            result.per_vertex_counts, per_vertex_triangle_counts(graph)
        )
        # each triangle contributes 3 vertex participations
        assert int(result.per_vertex_counts.sum()) == 3 * result.triangles

    def test_unknown_sink_kind_rejected(self, k6):
        with pytest.raises(ConfigurationError):
            PDTLRunner(PDTLConfig()).run(k6, sink_kind="bogus")


class TestInputStaging:
    def test_accepts_on_disk_graph(self, device):
        graph = CSRGraph.from_edgelist(complete_graph(8))
        gf = write_graph(device, "external_input", graph)
        result = PDTLRunner(PDTLConfig()).run(gf)
        assert result.triangles == forward_count(graph)

    def test_rejects_directed_input(self, device):
        from repro.core.orientation import orient_csr

        graph = orient_csr(CSRGraph.from_edgelist(complete_graph(5)))
        with pytest.raises(ConfigurationError):
            PDTLRunner(PDTLConfig()).run(graph)


class TestResultStructure:
    @pytest.fixture(scope="class")
    def result(self):
        graph = CSRGraph.from_edgelist(rmat(7, edge_factor=8, seed=5))
        config = PDTLConfig(num_nodes=3, procs_per_node=2, memory_per_proc="1MB")
        return PDTLRunner(config).run(graph), graph, config

    def test_worker_reports_cover_all_processors(self, result):
        res, graph, config = result
        assert len(res.workers) == config.total_processors
        assert {(w.node_index, w.proc_index) for w in res.workers} == {
            (n, p)
            for n in range(config.num_nodes)
            for p in range(config.procs_per_node)
        }

    def test_edge_ranges_cover_oriented_edges(self, result):
        res, graph, _ = result
        assert ranges_cover_exactly(res.edge_ranges, graph.num_undirected_edges)

    def test_worker_triangles_sum_to_total(self, result):
        res, _, _ = result
        assert sum(w.triangles for w in res.workers) == res.triangles

    def test_per_node_metrics_present(self, result):
        res, _, config = result
        rows = res.node_breakdown()
        assert len(rows) == config.num_nodes
        assert sum(r["triangles"] for r in rows) == res.triangles

    def test_copy_time_charged_to_non_master_nodes_only(self, result):
        res, _, config = result
        assert res.metrics.nodes[0].copy_seconds == 0.0
        for node in res.metrics.nodes[1:]:
            assert node.copy_seconds > 0.0
        assert res.average_copy_seconds > 0.0

    def test_network_traffic_scales_with_replication(self, result):
        res, graph, config = result
        graph_bytes = 8 * (graph.num_vertices + graph.num_undirected_edges)
        # the oriented graph is shipped to N-1 machines, plus small messages
        expected_min = (config.num_nodes - 1) * graph_bytes
        assert res.network_bytes >= expected_min
        assert res.network_bytes < expected_min + graph_bytes  # not duplicated twice

    def test_timing_fields_consistent(self, result):
        res, _, _ = result
        assert res.orientation_seconds >= 0.0
        assert res.calc_seconds >= 0.0
        assert res.total_seconds >= res.calc_seconds
        assert res.wall_seconds > 0.0
        assert res.total_cpu_seconds >= 0.0
        assert res.total_io_seconds >= 0.0

    def test_max_out_degree_recorded(self, result):
        res, graph, _ = result
        from repro.core.orientation import orient_csr

        assert res.max_out_degree == orient_csr(graph).max_degree


class TestSingleNodeEquivalence:
    def test_single_core_equals_mgt_baseline(self):
        from repro.baselines.mgt_single import run_single_core_mgt

        graph = CSRGraph.from_edgelist(rmat(6, edge_factor=8, seed=9))
        pdtl = PDTLRunner(PDTLConfig()).run(graph)
        mgt = run_single_core_mgt(graph)
        assert pdtl.triangles == mgt.triangles
