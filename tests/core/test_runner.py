"""Unit tests for the high-level convenience entry points."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PDTLConfig, count_triangles, list_triangles, triangle_counts_per_vertex
from repro.baselines.inmemory import forward_count, per_vertex_triangle_counts
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, rmat


class TestCountTriangles:
    def test_with_default_config(self, k6):
        assert count_triangles(k6).triangles == 20

    def test_with_explicit_config(self, k6):
        cfg = PDTLConfig(num_nodes=2, procs_per_node=2)
        assert count_triangles(k6, config=cfg).triangles == 20

    def test_with_keyword_overrides(self, k6):
        result = count_triangles(k6, num_nodes=2, procs_per_node=3, memory_per_proc="1MB")
        assert result.triangles == 20
        assert result.config.total_processors == 6

    def test_config_and_overrides_conflict(self, k6):
        with pytest.raises(ValueError):
            count_triangles(k6, config=PDTLConfig(), num_nodes=2)

    def test_matches_reference_on_random_graph(self):
        graph = CSRGraph.from_edgelist(rmat(7, edge_factor=6, seed=1))
        assert count_triangles(graph).triangles == forward_count(graph)


class TestListTriangles:
    def test_lists_all_triangles(self, k6):
        result = list_triangles(k6)
        assert len(result.triangle_list) == 20
        assert len({t.as_vertex_set() for t in result.triangle_list}) == 20

    def test_listing_disables_count_only(self, k6):
        result = list_triangles(k6)
        assert result.config.count_only is False

    def test_triangle_free(self, triangle_free_graph):
        assert list_triangles(triangle_free_graph).triangle_list == []


class TestPerVertexCounts:
    def test_matches_reference(self):
        graph = CSRGraph.from_edgelist(rmat(6, edge_factor=8, seed=2))
        result = triangle_counts_per_vertex(graph, procs_per_node=2)
        np.testing.assert_array_equal(
            result.per_vertex_counts, per_vertex_triangle_counts(graph)
        )

    def test_complete_graph_counts(self):
        graph = CSRGraph.from_edgelist(complete_graph(5))
        result = triangle_counts_per_vertex(graph)
        # every vertex of K5 is in C(4,2) = 6 triangles
        assert result.per_vertex_counts.tolist() == [6] * 5
