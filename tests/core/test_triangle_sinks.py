"""Unit tests for triangle records and sinks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.triangles import (
    CountingSink,
    FileSink,
    ListingSink,
    PerVertexCountSink,
    Triangle,
    make_sink,
)
from repro.utils import ceil_div


class TestTriangle:
    def test_vertex_set(self):
        t = Triangle(0, 1, 2)
        assert t.as_vertex_set() == frozenset({0, 1, 2})

    def test_iteration(self):
        assert tuple(Triangle(3, 4, 5)) == (3, 4, 5)

    def test_ordering_and_equality(self):
        assert Triangle(0, 1, 2) == Triangle(0, 1, 2)
        assert Triangle(0, 1, 2) < Triangle(0, 1, 3)

    def test_hashable(self):
        assert len({Triangle(0, 1, 2), Triangle(0, 1, 2)}) == 1


class TestCountingSink:
    def test_add_and_batch(self):
        sink = CountingSink()
        sink.add(0, 1, 2)
        sink.add_batch(0, 1, np.array([3, 4, 5]))
        assert sink.count == 4

    def test_empty_batch(self):
        sink = CountingSink()
        sink.add_batch(0, 1, np.empty(0, dtype=np.int64))
        assert sink.count == 0

    def test_merge(self):
        a, b = CountingSink(), CountingSink()
        a.add(0, 1, 2)
        b.add_batch(1, 2, np.array([3, 4]))
        a.merge(b)
        assert a.count == 3


class TestListingSink:
    def test_collects_triangles(self):
        sink = ListingSink()
        sink.add(0, 1, 2)
        sink.add_batch(0, 3, np.array([4, 5]))
        assert sink.count == 3
        assert Triangle(0, 3, 4) in sink.triangles

    def test_vertex_sets(self):
        sink = ListingSink()
        sink.add(0, 1, 2)
        assert sink.vertex_sets() == {frozenset({0, 1, 2})}

    def test_merge(self):
        a, b = ListingSink(), ListingSink()
        a.add(0, 1, 2)
        b.add(3, 4, 5)
        a.merge(b)
        assert a.count == 2
        assert len(a.triangles) == 2


class TestFileSink:
    def test_write_and_read_back(self, device):
        sink = FileSink(device.open("triangles.bin"), buffer_triangles=2)
        sink.add(0, 1, 2)
        sink.add_batch(3, 4, np.array([5, 6, 7]))
        triangles = sink.read_all()
        assert sink.count == 4
        assert Triangle(0, 1, 2) in triangles
        assert Triangle(3, 4, 7) in triangles

    def test_buffering_flushes_automatically(self, device):
        file = device.open("triangles.bin")
        sink = FileSink(file, buffer_triangles=1)
        sink.add(0, 1, 2)
        sink.add(1, 2, 3)
        # with a 1-triangle buffer both adds must already be on disk
        assert file.num_items() >= 3

    def test_output_charged_to_device(self, device):
        device.stats.reset()
        sink = FileSink(device.open("triangles.bin"), buffer_triangles=1)
        for i in range(10):
            sink.add(i, i + 1, i + 2)
        sink.flush()
        assert device.stats.bytes_written >= 10 * 24

    def test_empty_batch_noop(self, device):
        sink = FileSink(device.open("t.bin"))
        sink.add_batch(0, 1, np.empty(0, dtype=np.int64))
        assert sink.count == 0
        assert sink.read_all() == []


class TestPerVertexCountSink:
    def test_single_triangle(self):
        sink = PerVertexCountSink(5)
        sink.add(0, 1, 2)
        assert sink.per_vertex.tolist() == [1, 1, 1, 0, 0]

    def test_batch(self):
        sink = PerVertexCountSink(6)
        sink.add_batch(0, 1, np.array([2, 3]))
        assert sink.per_vertex.tolist() == [2, 2, 1, 1, 0, 0]
        assert sink.count == 2

    def test_repeated_w_in_batch(self):
        sink = PerVertexCountSink(4)
        sink.add_batch(0, 1, np.array([2, 2]))
        assert sink.per_vertex[2] == 2

    def test_merge(self):
        a, b = PerVertexCountSink(3), PerVertexCountSink(3)
        a.add(0, 1, 2)
        b.add(0, 1, 2)
        a.merge(b)
        assert a.count == 2
        assert a.per_vertex.tolist() == [2, 2, 2]


class TestMakeSink:
    def test_count(self):
        assert isinstance(make_sink("count"), CountingSink)

    def test_list(self):
        assert isinstance(make_sink("list"), ListingSink)

    def test_per_vertex(self):
        sink = make_sink("per-vertex", num_vertices=4)
        assert isinstance(sink, PerVertexCountSink)

    def test_per_vertex_requires_size(self):
        with pytest.raises(ValueError):
            make_sink("per-vertex")

    def test_file_requires_file(self):
        with pytest.raises(ValueError):
            make_sink("file")

    def test_file(self, device):
        sink = make_sink("file", file=device.open("t.bin"))
        assert isinstance(sink, FileSink)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_sink("bogus")


class TestFileSinkBlockAlignedCharge:
    """Buffered FileSink flushes must charge exactly the ideal T/B output I/O."""

    def test_charge_equals_ideal_block_count(self, device):
        # device block size is 512; the sink rounds its buffer to whole blocks
        device.stats.reset()
        sink = FileSink(device.open("triangles.bin"), buffer_triangles=100)
        n = 10_000
        ws = np.arange(2, 2 + n, dtype=np.int64)
        sink.add_batch(0, 1, ws)
        sink.flush()
        total_bytes = n * 24
        ideal_blocks = ceil_div(total_bytes, device.block_size)
        assert device.stats.bytes_written == total_bytes
        assert device.stats.blocks_written == ideal_blocks
        assert sink.count == n

    def test_interleaved_adds_still_aligned(self, device):
        device.stats.reset()
        sink = FileSink(device.open("triangles.bin"), buffer_triangles=64)
        rng = np.random.default_rng(3)
        total = 0
        for _ in range(200):
            k = int(rng.integers(1, 40))
            sink.add_triples(
                rng.integers(0, 50, k), rng.integers(0, 50, k), rng.integers(0, 50, k)
            )
            total += k
        for i in range(37):
            sink.add(i, i + 1, i + 2)
            total += 1
        sink.flush()
        assert sink.count == total
        assert device.stats.bytes_written == total * 24
        assert device.stats.blocks_written == ceil_div(total * 24, device.block_size)

    def test_large_batch_exceeding_buffer(self, device):
        sink = FileSink(device.open("triangles.bin"), buffer_triangles=8)
        n = 5_000
        sink.add_triples(
            np.arange(n, dtype=np.int64),
            np.arange(n, dtype=np.int64) + 1,
            np.arange(n, dtype=np.int64) + 2,
        )
        triangles = sink.read_all()
        assert len(triangles) == n
        assert triangles[0] == Triangle(0, 1, 2)
        assert triangles[-1] == Triangle(n - 1, n, n + 1)


class TestEdgeSupportSink:
    """Dense and spilling accumulation of per-edge triangle supports."""

    @pytest.fixture()
    def oriented_stream(self):
        """An oriented CSR graph, its edge keys, and its full triangle stream."""
        from repro.core import kernels
        from repro.core.orientation import orient_csr
        from repro.core.triangles import oriented_edge_keys
        from repro.graph.csr import CSRGraph
        from repro.graph.generators import rmat

        oriented = orient_csr(CSRGraph.from_edgelist(rmat(6, edge_factor=8, seed=21)))
        keys = oriented_edge_keys(oriented)
        cones, vs, ws, _ = kernels.triangle_range(
            oriented.indptr, oriented.indices, 0, oriented.num_vertices,
            want_triples=True,
        )
        return oriented, keys, (cones, vs, ws)

    def test_dense_support_sums_to_three_triangles(self, oriented_stream):
        from repro.core.triangles import EdgeSupportSink

        oriented, keys, (cones, vs, ws) = oriented_stream
        sink = EdgeSupportSink(keys, oriented.num_vertices)
        sink.add_triples(cones, vs, ws)
        assert not sink.spilling
        assert sink.count == ws.shape[0]
        assert int(sink.supports().sum()) == 3 * sink.count

    def test_scalar_and_batch_paths_agree(self, oriented_stream):
        from repro.core.triangles import EdgeSupportSink

        oriented, keys, (cones, vs, ws) = oriented_stream
        batched = EdgeSupportSink(keys, oriented.num_vertices)
        batched.add_triples(cones, vs, ws)
        scalar = EdgeSupportSink(keys, oriented.num_vertices)
        for u, v, w in zip(cones.tolist(), vs.tolist(), ws.tolist()):
            scalar.add(u, v, w)
        np.testing.assert_array_equal(scalar.supports(), batched.supports())

    def test_merge_combines_partials_exactly(self, oriented_stream):
        from repro.core.triangles import EdgeSupportSink

        oriented, keys, (cones, vs, ws) = oriented_stream
        whole = EdgeSupportSink(keys, oriented.num_vertices)
        whole.add_triples(cones, vs, ws)
        merged = EdgeSupportSink(keys, oriented.num_vertices)
        cut = ws.shape[0] // 3
        for lo, hi in ((0, cut), (cut, 2 * cut), (2 * cut, ws.shape[0])):
            part = EdgeSupportSink(keys, oriented.num_vertices)
            part.add_triples(cones[lo:hi], vs[lo:hi], ws[lo:hi])
            merged.merge(part)
        np.testing.assert_array_equal(merged.supports(), whole.supports())
        assert merged.count == whole.count

    def test_non_edge_triangle_raises(self, oriented_stream):
        from repro.core.triangles import EdgeSupportSink

        oriented, keys, _ = oriented_stream
        sink = EdgeSupportSink(keys, oriented.num_vertices)
        with pytest.raises(ValueError):
            sink.add(0, oriented.num_vertices - 1, oriented.num_vertices - 2)

    def test_spill_requires_file(self, oriented_stream):
        from repro.core.triangles import EdgeSupportSink

        oriented, keys, _ = oriented_stream
        with pytest.raises(ValueError):
            EdgeSupportSink(keys, oriented.num_vertices, memory_budget_bytes=8)

    def test_spill_matches_dense(self, oriented_stream, tmp_path):
        from repro.core.triangles import EdgeSupportSink
        from repro.externalmem.blockio import BlockDevice

        oriented, keys, (cones, vs, ws) = oriented_stream
        dense = EdgeSupportSink(keys, oriented.num_vertices)
        dense.add_triples(cones, vs, ws)
        device = BlockDevice(tmp_path, block_size=512)
        spill = EdgeSupportSink(
            keys,
            oriented.num_vertices,
            spill_file=device.open("spill.run"),
            memory_budget_bytes=256,  # far below the dense array: many runs
        )
        assert spill.spilling
        step = 23  # ragged batches so runs straddle triangle boundaries
        for lo in range(0, ws.shape[0], step):
            spill.add_triples(
                cones[lo : lo + step], vs[lo : lo + step], ws[lo : lo + step]
            )
        np.testing.assert_array_equal(spill.supports(), dense.supports())

    def test_spill_iter_positions_strictly_increasing(
        self, oriented_stream, tmp_path
    ):
        from repro.core.triangles import EdgeSupportSink
        from repro.externalmem.blockio import BlockDevice

        oriented, keys, (cones, vs, ws) = oriented_stream
        device = BlockDevice(tmp_path, block_size=512)
        spill = EdgeSupportSink(
            keys,
            oriented.num_vertices,
            spill_file=device.open("spill.run"),
            memory_budget_bytes=128,
        )
        spill.add_triples(cones, vs, ws)
        positions = []
        total = 0
        for pos, cnt in spill.iter_position_counts(buffer_items=13):
            positions.append(pos)
            total += int(cnt.sum())
        merged = np.concatenate(positions)
        assert np.all(np.diff(merged) > 0)  # unique and sorted across batches
        assert total == 3 * ws.shape[0]

    def test_spill_io_is_deterministic(self, oriented_stream, tmp_path):
        """Identical streams + budget => identical spill IOStats."""
        from repro.core.triangles import EdgeSupportSink
        from repro.externalmem.blockio import BlockDevice

        oriented, keys, (cones, vs, ws) = oriented_stream
        stats = []
        for run in range(2):
            device = BlockDevice(tmp_path / f"dev{run}", block_size=512)
            sink = EdgeSupportSink(
                keys,
                oriented.num_vertices,
                spill_file=device.open("spill.run"),
                memory_budget_bytes=256,
            )
            sink.add_triples(cones, vs, ws)
            sink.supports()
            stats.append(device.stats.as_dict())
        assert stats[0] == stats[1]

    def _spill_sink(self, keys, num_vertices, device, budget=64):
        from repro.core.triangles import EdgeSupportSink

        return EdgeSupportSink(
            keys,
            num_vertices,
            spill_file=device.open("s.run"),
            memory_budget_bytes=budget,
        )

    def test_cross_mode_merge_both_orders(self, oriented_stream, tmp_path):
        """Regression: merge used to require dense mode on both sides.

        A spilled sink must merge into a dense one (runs drained through
        the bounded k-way merge) and vice versa (batches re-recorded
        through the spill buffer), in either order, with a tiny budget.
        """
        from repro.core.triangles import EdgeSupportSink
        from repro.externalmem.blockio import BlockDevice

        oriented, keys, (cones, vs, ws) = oriented_stream
        whole = EdgeSupportSink(keys, oriented.num_vertices)
        whole.add_triples(cones, vs, ws)
        cut = ws.shape[0] // 2

        # dense.merge(spilled)
        dense = EdgeSupportSink(keys, oriented.num_vertices)
        dense.add_triples(cones[:cut], vs[:cut], ws[:cut])
        spill = self._spill_sink(
            keys, oriented.num_vertices, BlockDevice(tmp_path / "a", block_size=512)
        )
        spill.add_triples(cones[cut:], vs[cut:], ws[cut:])
        dense.merge(spill)
        np.testing.assert_array_equal(dense.supports(), whole.supports())
        assert dense.count == whole.count

        # spilled.merge(dense)
        spill2 = self._spill_sink(
            keys, oriented.num_vertices, BlockDevice(tmp_path / "b", block_size=512)
        )
        spill2.add_triples(cones[cut:], vs[cut:], ws[cut:])
        dense2 = EdgeSupportSink(keys, oriented.num_vertices)
        dense2.add_triples(cones[:cut], vs[:cut], ws[:cut])
        spill2.merge(dense2)
        assert spill2.spilling
        np.testing.assert_array_equal(spill2.supports(), whole.supports())
        assert spill2.count == whole.count

    def test_cross_mode_merge_empty_sides(self, oriented_stream, tmp_path):
        from repro.core.triangles import EdgeSupportSink
        from repro.externalmem.blockio import BlockDevice

        oriented, keys, (cones, vs, ws) = oriented_stream
        whole = EdgeSupportSink(keys, oriented.num_vertices)
        whole.add_triples(cones, vs, ws)

        # empty spilled side folded into a populated dense side, and an
        # empty dense side folded into a populated spilled one
        dense = EdgeSupportSink(keys, oriented.num_vertices)
        dense.add_triples(cones, vs, ws)
        empty_spill = self._spill_sink(
            keys, oriented.num_vertices, BlockDevice(tmp_path / "a", block_size=512)
        )
        dense.merge(empty_spill)
        np.testing.assert_array_equal(dense.supports(), whole.supports())

        spill = self._spill_sink(
            keys, oriented.num_vertices, BlockDevice(tmp_path / "b", block_size=512)
        )
        spill.add_triples(cones, vs, ws)
        spill.merge(EdgeSupportSink(keys, oriented.num_vertices))
        np.testing.assert_array_equal(spill.supports(), whole.supports())

    def test_spill_spill_merge(self, oriented_stream, tmp_path):
        from repro.externalmem.blockio import BlockDevice

        oriented, keys, (cones, vs, ws) = oriented_stream
        cut = ws.shape[0] // 2
        a = self._spill_sink(
            keys, oriented.num_vertices, BlockDevice(tmp_path / "a", block_size=512)
        )
        a.add_triples(cones[:cut], vs[:cut], ws[:cut])
        b = self._spill_sink(
            keys, oriented.num_vertices, BlockDevice(tmp_path / "b", block_size=512)
        )
        b.add_triples(cones[cut:], vs[cut:], ws[cut:])
        a.merge(b)
        from repro.core.triangles import EdgeSupportSink

        whole = EdgeSupportSink(keys, oriented.num_vertices)
        whole.add_triples(cones, vs, ws)
        np.testing.assert_array_equal(a.supports(), whole.supports())

    def test_cross_mode_merge_io_deterministic(self, oriented_stream, tmp_path):
        """Same streams + budget => identical IOStats for the cross merge."""
        from repro.core.triangles import EdgeSupportSink
        from repro.externalmem.blockio import BlockDevice

        oriented, keys, (cones, vs, ws) = oriented_stream
        stats = []
        for run in range(2):
            device = BlockDevice(tmp_path / f"dev{run}", block_size=512)
            spill = self._spill_sink(keys, oriented.num_vertices, device, budget=256)
            spill.add_triples(cones, vs, ws)
            dense = EdgeSupportSink(keys, oriented.num_vertices)
            dense.merge(spill)
            stats.append(device.stats.as_dict())
        assert stats[0] == stats[1]

    def test_merge_edge_count_mismatch_raises(self, oriented_stream):
        from repro.core.triangles import EdgeSupportSink

        oriented, keys, _ = oriented_stream
        a = EdgeSupportSink(keys, oriented.num_vertices)
        b = EdgeSupportSink(keys[:-1], oriented.num_vertices)
        with pytest.raises(ValueError):
            a.merge(b)


class TestEdgeSupportSinkDelta:
    """from_supports re-hydration + signed merge_delta (dynamic-graph path)."""

    @pytest.fixture()
    def sink_state(self):
        from repro.core import kernels
        from repro.core.orientation import orient_csr
        from repro.core.triangles import EdgeSupportSink, oriented_edge_keys
        from repro.graph.csr import CSRGraph
        from repro.graph.generators import rmat

        oriented = orient_csr(CSRGraph.from_edgelist(rmat(6, edge_factor=8, seed=5)))
        keys = oriented_edge_keys(oriented)
        cones, vs, ws, _ = kernels.triangle_range(
            oriented.indptr, oriented.indices, 0, oriented.num_vertices,
            want_triples=True,
        )
        sink = EdgeSupportSink(keys, oriented.num_vertices)
        sink.add_triples(cones, vs, ws)
        return oriented, keys, sink

    def test_from_supports_round_trip(self, sink_state):
        from repro.core.triangles import EdgeSupportSink

        oriented, keys, sink = sink_state
        rehydrated = EdgeSupportSink.from_supports(
            keys, oriented.num_vertices, sink.supports()
        )
        np.testing.assert_array_equal(rehydrated.supports(), sink.supports())
        assert rehydrated.count == sink.count
        # copied, not aliased
        rehydrated.support[0] += 1
        assert rehydrated.support[0] == sink.supports()[0] + 1

    def test_from_supports_rejects_bad_input(self, sink_state):
        from repro.core.triangles import EdgeSupportSink

        oriented, keys, sink = sink_state
        with pytest.raises(ValueError):
            EdgeSupportSink.from_supports(
                keys, oriented.num_vertices, sink.supports()[:-1]
            )
        bad = sink.supports().copy()
        bad[0] = -1
        with pytest.raises(ValueError):
            EdgeSupportSink.from_supports(keys, oriented.num_vertices, bad)

    def test_merge_delta_is_exact_integer_addition(self, sink_state):
        oriented, keys, sink = sink_state
        before = sink.supports().copy()
        positions = np.array([0, 2, 2, 1], dtype=np.int64)
        deltas = np.array([1, -1, 2, 0], dtype=np.int64)
        sink.merge_delta(positions, deltas)
        want = before.copy()
        np.add.at(want, positions, deltas)
        np.testing.assert_array_equal(sink.supports(), want)

    def test_merge_delta_negative_result_rejected_untouched(self, sink_state):
        oriented, keys, sink = sink_state
        before = sink.supports().copy()
        huge = np.int64(before.max() + 1)
        with pytest.raises(ValueError):
            sink.merge_delta(np.array([0]), np.array([-huge]))
        np.testing.assert_array_equal(sink.supports(), before)

    def test_merge_delta_out_of_range_rejected(self, sink_state):
        oriented, keys, sink = sink_state
        with pytest.raises(ValueError):
            sink.merge_delta(np.array([sink.num_edges]), np.array([1]))
        with pytest.raises(ValueError):
            sink.merge_delta(np.array([0, 1]), np.array([1]))

    def test_merge_delta_spill_mode_refused(self, sink_state, tmp_path):
        from repro.core.triangles import EdgeSupportSink
        from repro.externalmem.blockio import BlockDevice

        oriented, keys, _ = sink_state
        device = BlockDevice(tmp_path, block_size=512)
        spill = EdgeSupportSink(
            keys,
            oriented.num_vertices,
            spill_file=device.open("s.run"),
            memory_budget_bytes=64,
        )
        with pytest.raises(ValueError):
            spill.merge_delta(np.array([0]), np.array([1]))


class TestSinkRegistry:
    def test_registered_kinds(self):
        from repro.core.triangles import CHUNK_SINK_KINDS, sink_kinds

        assert set(CHUNK_SINK_KINDS) <= set(sink_kinds())
        assert "file" in sink_kinds()

    def test_normalize_underscore_spelling(self):
        from repro.core.triangles import normalize_sink_kind

        assert normalize_sink_kind("edge_support") == "edge-support"
        assert normalize_sink_kind("per_vertex") == "per-vertex"
        assert normalize_sink_kind("count") == "count"

    def test_make_edge_support_from_graph(self):
        from repro.core.orientation import orient_csr
        from repro.core.triangles import EdgeSupportSink, make_sink
        from repro.graph.csr import CSRGraph
        from repro.graph.generators import complete_graph

        oriented = orient_csr(CSRGraph.from_edgelist(complete_graph(5)))
        sink = make_sink("edge_support", graph=oriented)
        assert isinstance(sink, EdgeSupportSink)
        assert sink.num_edges == oriented.num_edges

    def test_edge_support_without_graph_raises(self):
        with pytest.raises(ValueError):
            make_sink("edge-support")

    def test_per_vertex_accepts_graph_context(self):
        from repro.core.orientation import orient_csr
        from repro.graph.csr import CSRGraph
        from repro.graph.generators import complete_graph

        oriented = orient_csr(CSRGraph.from_edgelist(complete_graph(5)))
        sink = make_sink("per-vertex", graph=oriented)
        assert sink.per_vertex.shape[0] == 5

    def test_custom_registration_dispatches(self):
        from repro.core.triangles import (
            _SINK_FACTORIES,
            CountingSink,
            make_sink,
            register_sink,
        )

        @register_sink("test-custom")
        def _factory(**_context):
            return CountingSink()

        try:
            assert isinstance(make_sink("test_custom"), CountingSink)
        finally:
            del _SINK_FACTORIES["test-custom"]

    def test_unknown_kind_raises_not_falls_through(self):
        with pytest.raises(ValueError):
            make_sink("definitely-not-registered")
