"""The shared-memory graph publication layer (``repro.core.shm``).

Covers the full lifecycle the PDTL runner exercises: publish → attach
(zero-copy views, same-process and cross-process) → unlink, plus the
properties the rest of the suite relies on -- bit-identical results
against the on-disk path, segment cleanup on success *and* on failure,
and no ``/dev/shm`` stragglers after any run.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.baselines.inmemory import forward_count
from repro.core import shm as shm_mod
from repro.core.config import PDTLConfig
from repro.core.mgt import MGTWorker, mgt_count
from repro.core.orientation import orient_graph
from repro.core.pdtl import PDTLRunner
from repro.core.scheduler import ChunkTask, chunk_seed, execute_chunk_task
from repro.core.shm import (
    SHM_PREFIX,
    SharedGraphView,
    attach_view,
    detach_view,
    publish_graph,
    publish_input_graph,
    shm_available,
)
from repro.errors import PDTLError
from repro.externalmem.blockio import BlockDevice, DiskModel
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat

pytestmark = pytest.mark.skipif(
    not shm_available()[0],
    reason=f"POSIX shared memory unavailable: {shm_available()[1]}",
)


def _segments_on_host() -> list[str]:
    """Every live segment this module's publications could have created."""
    return glob.glob(f"/dev/shm/{SHM_PREFIX}-*")


@pytest.fixture
def oriented(tmp_path):
    device = BlockDevice(tmp_path / "disk", block_size=512)
    graph = CSRGraph.from_edgelist(rmat(6, edge_factor=8, seed=5))
    return orient_graph(write_graph(device, "g", graph)).oriented


@pytest.fixture
def config() -> PDTLConfig:
    return PDTLConfig(memory_per_proc=4096, block_size=512, modelled_cpu=True)


class TestPublishAttach:
    def test_roundtrip_matches_file_reads(self, oriented):
        with publish_graph(oriented) as publication:
            view = SharedGraphView(publication.descriptor, oriented.device.model)
            np.testing.assert_array_equal(view.read_degrees(), oriented.read_degrees())
            np.testing.assert_array_equal(
                view.read_adjacency_range(0, oriented.num_edges),
                oriented.read_adjacency_range(0, oriented.num_edges),
            )
            np.testing.assert_array_equal(view.cached_offsets, oriented.offsets())
            assert view.num_vertices == oriented.num_vertices
            assert view.num_edges == oriented.num_edges
            assert view.max_degree == oriented.max_degree
            assert view.directed
            view.close()

    def test_views_are_zero_copy_and_read_only(self, oriented):
        with publish_graph(oriented) as publication:
            view = SharedGraphView(publication.descriptor, oriented.device.model)
            window = view.read_adjacency_range(0, min(8, oriented.num_edges))
            assert not window.flags.writeable
            # a slice of the mapping, not a copy
            assert window.base is not None
            with pytest.raises((ValueError, RuntimeError)):
                window[0] = -1
            view.close()

    def test_scan_invariants_published(self, oriented):
        with publish_graph(oriented) as publication:
            view = SharedGraphView(publication.descriptor, oriented.device.model)
            adjacency = oriented.read_adjacency_range(0, oriented.num_edges)
            offsets = oriented.offsets()
            sources = np.repeat(
                np.arange(oriented.num_vertices, dtype=np.int64),
                np.diff(offsets).astype(np.int64),
            )
            np.testing.assert_array_equal(view.scan_sources, sources)
            expected_keys = sources * oriented.num_vertices + adjacency
            np.testing.assert_array_equal(view.scan_keys, expected_keys)
            assert bool(np.all(np.diff(view.scan_keys) >= 0))  # sorted haystack
            view.close()

    def test_out_of_bounds_range_rejected(self, oriented):
        with publish_graph(oriented) as publication:
            view = SharedGraphView(publication.descriptor, oriented.device.model)
            with pytest.raises(PDTLError):
                view.read_adjacency_range(0, oriented.num_edges + 1)
            with pytest.raises(PDTLError):
                view.read_adjacency_range(-1, 1)
            view.close()

    def test_attach_cache_returns_same_view(self, oriented):
        publication = publish_graph(oriented)
        try:
            model = oriented.device.model
            first = attach_view(publication.descriptor, model)
            second = attach_view(publication.descriptor, model)
            assert first is second
        finally:
            publication.unlink()
        # unlink dropped the same-process cached attachment too
        assert _segments_on_host() == []

    def test_with_readahead_is_noop(self, oriented):
        with publish_graph(oriented) as publication:
            view = SharedGraphView(publication.descriptor, oriented.device.model)
            assert view.with_readahead("1MB") is view
            view.close()


class TestLifecycle:
    def test_unlink_removes_segments_and_is_idempotent(self, oriented):
        publication = publish_graph(oriented)
        names = [
            publication.descriptor.degrees.name,
            publication.descriptor.adjacency.name,
            publication.descriptor.offsets.name,
            publication.descriptor.scan_sources.name,
            publication.descriptor.scan_keys.name,
        ]
        for name in names:
            assert glob.glob(f"/dev/shm/{name}")
        publication.unlink()
        publication.unlink()  # idempotent
        for name in names:
            assert not glob.glob(f"/dev/shm/{name}")

    def test_attached_view_survives_unlink(self, oriented):
        """POSIX keeps unlinked segments alive for existing mappings."""
        publication = publish_graph(oriented)
        view = SharedGraphView(publication.descriptor, oriented.device.model)
        reference = oriented.read_adjacency_range(0, oriented.num_edges).copy()
        publication.unlink()
        np.testing.assert_array_equal(
            view.read_adjacency_range(0, oriented.num_edges), reference
        )
        view.close()
        assert _segments_on_host() == []

    def test_detach_view_without_attachment_is_noop(self):
        detach_view("no-such-token")

    def test_dead_attachment_swept_on_next_attach(self, oriented):
        """A cached view whose publication was unlinked elsewhere (a pool
        worker's situation) is evicted -- and its memory released -- the
        next time the process attaches anything."""
        import os

        stale_pub = publish_graph(oriented)
        stale_token = stale_pub.descriptor.token
        attach_view(stale_pub.descriptor, oriented.device.model)
        assert stale_token in shm_mod._ATTACHED
        # simulate the master unlinking in *another* process: remove the
        # segments without touching this process's cache
        for segment in stale_pub._segments:
            os.unlink(f"/dev/shm/{segment.name}")
            try:  # keep this process's resource tracker consistent
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass
        fresh_pub = publish_graph(oriented)
        try:
            view = attach_view(fresh_pub.descriptor, oriented.device.model)
            assert stale_token not in shm_mod._ATTACHED
            assert view.read_degrees().shape[0] == oriented.num_vertices
        finally:
            fresh_pub.unlink()
            stale_pub._unlinked = True  # segments already gone
        assert _segments_on_host() == []

    def test_tokens_are_unique(self, oriented):
        with publish_graph(oriented) as first, publish_graph(oriented) as second:
            assert first.descriptor.token != second.descriptor.token


class TestMGTOnSharedView:
    def test_counts_and_accounting_match_disk_path(self, oriented, config):
        disk = mgt_count(oriented, config)
        with publish_graph(oriented) as publication:
            view = SharedGraphView(publication.descriptor, oriented.device.model)
            shared = MGTWorker(view, config).run()
            view.close()
        assert shared.triangles == disk.triangles
        assert shared.iterations == disk.iterations
        assert shared.cpu_seconds == disk.cpu_seconds  # modelled_cpu
        assert shared.io_seconds == disk.io_seconds
        assert shared.io_stats.as_dict() == disk.io_stats.as_dict()
        assert shared.intersections == disk.intersections
        assert shared.cpu_operations == disk.cpu_operations
        assert shared.edges_processed == disk.edges_processed

    def test_edge_range_restriction_matches(self, oriented, config):
        mid = oriented.num_edges // 2
        disk = MGTWorker(oriented, config, range_start=mid).run()
        with publish_graph(oriented) as publication:
            view = SharedGraphView(publication.descriptor, oriented.device.model)
            shared = MGTWorker(view, config, range_start=mid).run()
            view.close()
        assert shared.triangles == disk.triangles
        assert shared.io_stats.as_dict() == disk.io_stats.as_dict()

    def test_chunk_task_executes_against_shared_segments(self, oriented, config):
        with publish_graph(oriented) as publication:
            task = ChunkTask(
                index=0,
                device_root=str(oriented.device.root),
                device_block_size=oriented.device.block_size,
                disk_model=DiskModel(),
                graph_name=oriented.name,
                num_vertices=oriented.num_vertices,
                num_edges=oriented.num_edges,
                max_degree=oriented.max_degree,
                config=config,
                start=0,
                stop=oriented.num_edges,
                sink_kind="count",
                shm=publication.descriptor,
                seed=chunk_seed(0, 0),
            )
            outcome = execute_chunk_task(task)
            detach_view(publication.descriptor.token)
        assert outcome.triangles == mgt_count(oriented, config).triangles


class TestRunnerIntegration:
    def _config(self, **overrides) -> PDTLConfig:
        base = dict(
            num_nodes=2,
            procs_per_node=2,
            memory_per_proc=4096,
            block_size=512,
            modelled_cpu=True,
            shm=True,
        )
        base.update(overrides)
        return PDTLConfig(**base)

    def test_no_segment_survives_a_run(self, rmat_small):
        expected = forward_count(rmat_small)
        for backend in ("serial", "threads", "processes"):
            result = PDTLRunner(self._config(), backend=backend).run(rmat_small)
            assert result.triangles == expected
            assert result.shm_used
            assert _segments_on_host() == [], backend

    def test_cleanup_under_failure_injection(self, rmat_small):
        config = self._config(scheduling="dynamic", failure_spec={0: 1, 2: 0})
        for backend in ("serial", "processes"):
            result = PDTLRunner(config, backend=backend).run(rmat_small)
            assert result.triangles == forward_count(rmat_small)
            assert result.metrics.total_chunks_retried >= 1
            assert _segments_on_host() == [], backend

    def test_cleanup_when_a_task_raises(self, rmat_small, monkeypatch):
        import repro.core.pdtl as pdtl_mod

        def boom(task):
            raise RuntimeError("injected task failure")

        monkeypatch.setattr(pdtl_mod, "execute_chunk_task", boom)
        with pytest.raises(RuntimeError, match="injected task failure"):
            PDTLRunner(self._config(), backend="serial").run(rmat_small)
        assert _segments_on_host() == []

    def test_shm_matches_disk_exactly(self, rmat_small):
        for scheduling in ("static", "dynamic"):
            disk = PDTLRunner(
                self._config(shm=False, scheduling=scheduling), backend="serial"
            ).run(rmat_small)
            shared = PDTLRunner(
                self._config(scheduling=scheduling), backend="serial"
            ).run(rmat_small)
            assert shared.triangles == disk.triangles
            assert shared.calc_seconds == disk.calc_seconds
            assert shared.total_io_seconds == disk.total_io_seconds
            assert shared.total_cpu_seconds == disk.total_cpu_seconds
            assert not disk.shm_used and shared.shm_used

    def test_straggler_spec_reroutes_chunks_and_keeps_counts(self, rmat_small):
        expected = forward_count(rmat_small)
        config = self._config(
            num_nodes=1,
            procs_per_node=2,
            scheduling="dynamic",
            straggler_spec={0: 25.0},
        )
        result = PDTLRunner(config, backend="serial").run(rmat_small)
        assert result.triangles == expected
        slow, fast = result.workers
        # the deterministic pull replay routes most chunks to the fast worker
        assert slow.chunks_completed < fast.chunks_completed
        assert slow.chunks_completed + fast.chunks_completed == result.num_chunks
        assert _segments_on_host() == []


class TestInputPublication:
    """The input-graph publisher behind ``parallel_preprocess``."""

    @pytest.fixture
    def input_graph(self, tmp_path):
        device = BlockDevice(tmp_path / "disk", block_size=512)
        graph = CSRGraph.from_edgelist(rmat(6, edge_factor=8, seed=5))
        return write_graph(device, "g", graph)

    def test_roundtrip_carries_order_keys_not_scan_invariants(self, input_graph):
        from repro.core.orientation import degree_order_keys

        with publish_input_graph(input_graph) as publication:
            descriptor = publication.descriptor
            assert descriptor.order_keys is not None
            assert descriptor.scan_sources is None and descriptor.scan_keys is None
            view = SharedGraphView(descriptor, input_graph.device.model)
            np.testing.assert_array_equal(
                view.read_degrees(), input_graph.read_degrees()
            )
            np.testing.assert_array_equal(
                view.read_adjacency_range(0, input_graph.num_edges),
                input_graph.read_adjacency_range(0, input_graph.num_edges),
            )
            np.testing.assert_array_equal(
                view.order_keys, degree_order_keys(input_graph.read_degrees())
            )
            assert not view.directed
            with pytest.raises(PDTLError, match="scan invariants"):
                view.scan_sources
            with pytest.raises(PDTLError, match="scan invariants"):
                view.scan_keys
            view.close()
        assert _segments_on_host() == []

    def test_oriented_publication_has_no_order_keys(self, oriented):
        with publish_graph(oriented) as publication:
            assert publication.descriptor.order_keys is None
            view = SharedGraphView(publication.descriptor, oriented.device.model)
            with pytest.raises(PDTLError, match="degree-order keys"):
                view.order_keys
            view.close()

    def test_closed_view_reports_closed_not_missing(self, oriented):
        """Use-after-close must not be misdiagnosed as a publication that
        lacked the derived arrays."""
        with publish_graph(oriented) as publication:
            view = SharedGraphView(publication.descriptor, oriented.device.model)
            view.close()
            with pytest.raises(PDTLError, match="is closed"):
                view.scan_sources

    def test_unlink_removes_input_segments(self, input_graph):
        publication = publish_input_graph(input_graph)
        names = [
            publication.descriptor.degrees.name,
            publication.descriptor.adjacency.name,
            publication.descriptor.offsets.name,
            publication.descriptor.order_keys.name,
        ]
        for name in names:
            assert glob.glob(f"/dev/shm/{name}")
        publication.unlink()
        publication.unlink()  # idempotent
        assert _segments_on_host() == []


class TestParallelPreprocessLifecycle:
    """Input-segment cleanup of ``PDTLConfig(parallel_preprocess=True)``
    runs -- on success, on mid-run worker failure, and on the
    shm-unavailable fallback path."""

    def _config(self, **overrides) -> PDTLConfig:
        base = dict(
            num_nodes=2,
            procs_per_node=2,
            memory_per_proc=4096,
            block_size=512,
            modelled_cpu=True,
            parallel_preprocess=True,
        )
        base.update(overrides)
        return PDTLConfig(**base)

    def test_no_segment_survives_a_run(self, rmat_small):
        expected = forward_count(rmat_small)
        for backend in ("serial", "threads", "processes"):
            result = PDTLRunner(self._config(), backend=backend).run(rmat_small)
            assert result.triangles == expected
            assert result.preprocess_parallel
            assert _segments_on_host() == [], backend

    def test_no_segment_survives_with_shm_triangle_phase(self, rmat_small):
        """Both publications -- input graph and oriented graph -- are
        unlinked by the end of a combined shm + parallel_preprocess run."""
        result = PDTLRunner(self._config(shm=True), backend="processes").run(rmat_small)
        assert result.triangles == forward_count(rmat_small)
        assert result.shm_used and result.preprocess_parallel
        assert _segments_on_host() == []

    def test_cleanup_when_preprocess_worker_raises(self, rmat_small, monkeypatch):
        """A preprocessing task failing mid-fan-out must not leak the
        input-graph segments (the runner unlinks in a finally)."""
        import repro.cluster.executor as executor_mod

        def boom(tasks, fn, max_workers=None):
            raise RuntimeError("injected preprocessing failure")

        monkeypatch.setattr(executor_mod, "run_preprocess_queue", boom)
        with pytest.raises(RuntimeError, match="injected preprocessing failure"):
            PDTLRunner(self._config(), backend="serial").run(rmat_small)
        assert _segments_on_host() == []

    def test_cleanup_when_mgt_task_raises_after_preprocess(
        self, rmat_small, monkeypatch
    ):
        """PR 3's leak check extended: with parallel preprocessing on, a
        triangle-phase task exception still leaves /dev/shm clean."""
        import repro.core.pdtl as pdtl_mod

        def boom(task):
            raise RuntimeError("injected task failure")

        monkeypatch.setattr(pdtl_mod, "execute_chunk_task", boom)
        with pytest.raises(RuntimeError, match="injected task failure"):
            PDTLRunner(self._config(shm=True), backend="serial").run(rmat_small)
        assert _segments_on_host() == []

    def test_falls_back_with_warning_when_unavailable(self, rmat_small, monkeypatch):
        import repro.core.pdtl as pdtl_mod

        monkeypatch.setattr(
            pdtl_mod, "shm_available", lambda: (False, "no /dev/shm mount")
        )
        with pytest.warns(RuntimeWarning, match="parallel_preprocess=True requested"):
            result = PDTLRunner(self._config(), backend="serial").run(rmat_small)
        assert result.triangles == forward_count(rmat_small)
        assert not result.preprocess_parallel
        assert _segments_on_host() == []

    def test_fallback_results_identical(self, rmat_small, monkeypatch):
        """The fallback path's modelled numbers equal the parallel path's --
        degrading hosts only lose wall clock, never accounting."""
        reference = PDTLRunner(self._config(), backend="serial").run(rmat_small)
        assert reference.preprocess_parallel

        import repro.core.pdtl as pdtl_mod

        monkeypatch.setattr(
            pdtl_mod, "shm_available", lambda: (False, "no /dev/shm mount")
        )
        with pytest.warns(RuntimeWarning):
            fallback = PDTLRunner(self._config(), backend="serial").run(rmat_small)
        assert fallback.triangles == reference.triangles
        assert fallback.calc_seconds == reference.calc_seconds
        assert fallback.modelled_setup_seconds == reference.modelled_setup_seconds
        assert (
            fallback.metrics.setup_io_stats.as_dict()
            == reference.metrics.setup_io_stats.as_dict()
        )


class TestAvailabilityGuard:
    def _config(self) -> PDTLConfig:
        return PDTLConfig(memory_per_proc=4096, block_size=512, shm=True)

    def test_probe_reports_available_here(self):
        assert shm_available() == (True, "")

    def test_runner_falls_back_with_warning_when_unavailable(
        self, rmat_small, monkeypatch
    ):
        import repro.core.pdtl as pdtl_mod

        monkeypatch.setattr(
            pdtl_mod, "shm_available", lambda: (False, "no /dev/shm mount")
        )
        with pytest.warns(RuntimeWarning, match="no /dev/shm mount"):
            result = PDTLRunner(self._config(), backend="serial").run(rmat_small)
        assert result.triangles == forward_count(rmat_small)
        assert not result.shm_used

    def test_publish_raises_when_unavailable(self, oriented, monkeypatch):
        monkeypatch.setattr(shm_mod, "_AVAILABLE", (False, "probe failed"))
        with pytest.raises(PDTLError, match="probe failed"):
            publish_graph(oriented)
        monkeypatch.setattr(shm_mod, "_AVAILABLE", None)
        assert shm_available()[0]
