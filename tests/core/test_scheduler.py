"""Unit tests for the dynamic chunk scheduler (chunking, pulls, failures)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import PDTLConfig
from repro.core.mgt import mgt_count
from repro.core.orientation import orient_graph
from repro.core.scheduler import (
    ChunkTask,
    DynamicScheduler,
    chunk_seed,
    chunks_cover_exactly,
    execute_chunk_task,
    make_chunks,
    merge_mgt_results,
    resolve_chunk_edges,
)
from repro.errors import ConfigurationError, SchedulingError
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat


class TestChunking:
    def test_exact_partition(self):
        chunks = make_chunks(10, 3)
        assert [(c.start, c.stop) for c in chunks] == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert chunks_cover_exactly(chunks, 10)

    def test_empty_file_has_no_chunks(self):
        assert make_chunks(0, 5) == []
        assert chunks_cover_exactly([], 0)

    def test_chunk_indices_are_file_order(self):
        chunks = make_chunks(100, 7)
        assert [c.index for c in chunks] == list(range(len(chunks)))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_chunks(10, 0)
        with pytest.raises(ConfigurationError):
            make_chunks(-1, 4)

    def test_resolved_size_is_whole_windows(self):
        config = PDTLConfig(memory_per_proc=16384, block_size=512)
        window = config.window_edges
        # explicit sizes round up to a whole number of windows
        assert resolve_chunk_edges(config.with_cores(2), 1) == window
        explicit = PDTLConfig(
            memory_per_proc=16384,
            block_size=512,
            scheduling="dynamic",
            chunk_edges=window + 1,
        )
        assert resolve_chunk_edges(explicit, 10 * window) == 2 * window

    def test_default_size_targets_chunks_per_worker(self):
        from repro.core.scheduler import DEFAULT_CHUNKS_PER_WORKER

        config = PDTLConfig(memory_per_proc=16384, block_size=512, procs_per_node=2)
        window = config.window_edges
        num_edges = 100 * window
        size = resolve_chunk_edges(config, num_edges)
        assert size % window == 0
        chunks = make_chunks(num_edges, size)
        target = config.total_processors * DEFAULT_CHUNKS_PER_WORKER
        assert target <= len(chunks) <= 2 * target


class TestPullSchedule:
    def test_uniform_costs_balance_exactly(self):
        chunks = make_chunks(8, 1)
        schedule = DynamicScheduler(chunks, num_workers=4).schedule([1.0] * 8)
        assert sorted(len(a) for a in schedule.assignments) == [2, 2, 2, 2]
        assert schedule.total_retries == 0

    def test_every_chunk_assigned_exactly_once(self):
        chunks = make_chunks(13, 1)
        schedule = DynamicScheduler(chunks, num_workers=3).schedule(
            [float(i % 5 + 1) for i in range(13)]
        )
        seen = sorted(i for a in schedule.assignments for i in a)
        assert seen == list(range(13))

    def test_greedy_routes_work_away_from_heavy_chunk(self):
        # one huge chunk first: its holder should get nothing else
        chunks = make_chunks(5, 1)
        costs = [100.0, 1.0, 1.0, 1.0, 1.0]
        schedule = DynamicScheduler(chunks, num_workers=2).schedule(costs)
        assert schedule.assignments[0] == [0]
        assert schedule.assignments[1] == [1, 2, 3, 4]

    def test_steals_counted_against_static_split(self):
        chunks = make_chunks(4, 1)
        # worker 0 is extremely slow on its first chunk, so worker 1 steals
        costs = [10.0, 1.0, 1.0, 1.0]
        schedule = DynamicScheduler(chunks, num_workers=2).schedule(costs)
        # static homes: chunks 0,1 -> worker 0; chunks 2,3 -> worker 1
        assert schedule.stolen[1] == 1  # worker 1 completed chunk 1
        assert schedule.total_steals == 1

    def test_straggler_factor_sheds_load(self):
        chunks = make_chunks(12, 1)
        fair = DynamicScheduler(chunks, num_workers=2).schedule([1.0] * 12)
        skewed = DynamicScheduler(
            chunks, num_workers=2, straggler_factors={0: 5.0}
        ).schedule([1.0] * 12)
        assert len(fair.assignments[0]) == 6
        assert len(skewed.assignments[0]) < len(skewed.assignments[1])

    def test_schedule_is_deterministic(self):
        chunks = make_chunks(20, 1)
        costs = [float((7 * i) % 11 + 1) for i in range(20)]
        first = DynamicScheduler(chunks, num_workers=4).schedule(costs)
        second = DynamicScheduler(chunks, num_workers=4).schedule(costs)
        assert first.assignments == second.assignments
        assert first.worker_seconds == second.worker_seconds

    def test_cost_count_mismatch_rejected(self):
        chunks = make_chunks(4, 1)
        with pytest.raises(ConfigurationError):
            DynamicScheduler(chunks, num_workers=2).schedule([1.0])


class TestFailureInjection:
    def test_failed_workers_chunk_is_reexecuted(self):
        chunks = make_chunks(6, 1)
        schedule = DynamicScheduler(
            chunks, num_workers=2, failure_after={0: 1}
        ).schedule([1.0] * 6)
        assert schedule.failed_workers == [0]
        # worker 0 completed exactly one chunk before dying
        assert len(schedule.assignments[0]) == 1
        # the chunk it died holding was completed by worker 1
        assert schedule.total_retries == 1
        assert schedule.retried[1] != []
        seen = sorted(i for a in schedule.assignments for i in a)
        assert seen == list(range(6))

    def test_worker_dying_on_first_pull_completes_nothing(self):
        chunks = make_chunks(4, 1)
        schedule = DynamicScheduler(
            chunks, num_workers=2, failure_after={0: 0}
        ).schedule([1.0] * 4)
        assert schedule.assignments[0] == []
        assert sorted(schedule.assignments[1]) == [0, 1, 2, 3]

    def test_all_workers_dead_raises(self):
        chunks = make_chunks(4, 1)
        scheduler = DynamicScheduler(
            chunks, num_workers=2, failure_after={0: 0, 1: 0}
        )
        with pytest.raises(SchedulingError):
            scheduler.schedule([1.0] * 4)

    def test_unknown_worker_in_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamicScheduler(make_chunks(2, 1), num_workers=2, failure_after={5: 1})


class TestChunkTaskExecution:
    @pytest.fixture()
    def oriented(self, device):
        graph = CSRGraph.from_edgelist(rmat(6, edge_factor=8, seed=9))
        gf = write_graph(device, "g", graph)
        return orient_graph(gf).oriented

    def test_chunked_outcomes_sum_to_single_core_count(self, oriented):
        config = PDTLConfig(memory_per_proc=2048, block_size=512)
        expected = mgt_count(oriented, config).triangles
        chunks = make_chunks(oriented.num_edges, config.window_edges)
        assert len(chunks) > 1
        outcomes = [
            execute_chunk_task(
                ChunkTask.from_graph(c.index, oriented, config, c.start, c.stop, "count")
            )
            for c in chunks
        ]
        assert sum(o.triangles for o in outcomes) == expected

    def test_chunk_task_roundtrips_through_pickle(self, oriented):
        config = PDTLConfig(memory_per_proc=2048, block_size=512)
        task = ChunkTask.from_graph(0, oriented, config, 0, oriented.num_edges, "count")
        clone = pickle.loads(pickle.dumps(task))
        assert execute_chunk_task(clone).triangles == mgt_count(oriented, config).triangles

    def test_merge_preserves_totals(self, oriented):
        config = PDTLConfig(memory_per_proc=2048, block_size=512)
        chunks = make_chunks(oriented.num_edges, config.window_edges)
        results = [
            execute_chunk_task(
                ChunkTask.from_graph(c.index, oriented, config, c.start, c.stop, "count")
            ).result
            for c in chunks
        ]
        merged = merge_mgt_results(results, block_size=config.block_size)
        assert merged.triangles == sum(r.triangles for r in results)
        assert merged.edges_processed == oriented.num_edges
        assert merged.range_start == 0
        assert merged.range_stop == oriented.num_edges
        assert merged.cpu_operations == sum(r.cpu_operations for r in results)

    def test_merge_of_nothing_is_empty(self):
        merged = merge_mgt_results([], block_size=512)
        assert merged.triangles == 0
        assert merged.edges_processed == 0


class TestChunkSeeds:
    """Worker-side determinism: the per-chunk seed is a pure function of the
    run seed and the *chunk id* -- never of the pool worker that happens to
    execute the chunk -- so dynamic-scheduling replay is reproducible under
    the persistent process pool."""

    def test_seed_is_deterministic_per_chunk(self):
        assert chunk_seed(0, 3) == chunk_seed(0, 3)
        assert chunk_seed(7, 3) == chunk_seed(7, 3)

    def test_seed_varies_with_chunk_and_run_seed(self):
        seeds = {chunk_seed(0, i) for i in range(32)}
        assert len(seeds) == 32
        assert chunk_seed(0, 5) != chunk_seed(1, 5)

    def test_tasks_carry_chunk_derived_seeds(self, tmp_path):
        from repro.externalmem.blockio import BlockDevice

        device = BlockDevice(tmp_path / "disk", block_size=512)
        oriented = orient_graph(
            write_graph(device, "g", CSRGraph.from_edgelist(rmat(5, seed=3)))
        ).oriented
        config = PDTLConfig(memory_per_proc=4096, block_size=512, seed=9)
        tasks = [
            ChunkTask.from_graph(
                index=i, graph=oriented, config=config, start=0,
                stop=oriented.num_edges, sink_kind="count",
            )
            for i in range(3)
        ]
        assert [t.seed for t in tasks] == [chunk_seed(9, i) for i in range(3)]
        # the task RNG replays identically no matter where it is drawn
        draws_a = tasks[0].rng().integers(0, 1 << 30, 4).tolist()
        draws_b = tasks[0].rng().integers(0, 1 << 30, 4).tolist()
        assert draws_a == draws_b
        assert tasks[0].rng().integers(0, 1 << 30, 4).tolist() != tasks[
            1
        ].rng().integers(0, 1 << 30, 4).tolist()

    def test_host_jitter_does_not_change_outcomes(self, tmp_path):
        from repro.externalmem.blockio import BlockDevice

        device = BlockDevice(tmp_path / "disk", block_size=512)
        oriented = orient_graph(
            write_graph(device, "g", CSRGraph.from_edgelist(rmat(5, seed=3)))
        ).oriented
        results = []
        for jitter in (0.0, 0.005):
            config = PDTLConfig(
                memory_per_proc=4096,
                block_size=512,
                modelled_cpu=True,
                host_jitter_seconds=jitter,
            )
            task = ChunkTask.from_graph(
                index=0, graph=oriented, config=config, start=0,
                stop=oriented.num_edges, sink_kind="count",
            )
            outcome = execute_chunk_task(task)
            results.append(
                (outcome.triangles, outcome.result.cpu_seconds, outcome.result.io_seconds)
            )
        assert results[0] == results[1]


class TestConfigKnobs:
    def test_scheduling_validated(self):
        with pytest.raises(ConfigurationError):
            PDTLConfig(scheduling="adaptive")

    def test_failure_spec_normalised_from_dict(self):
        config = PDTLConfig(
            procs_per_node=4, scheduling="dynamic", failure_spec={2: 1, 0: 3}
        )
        assert config.failure_spec == ((0, 3), (2, 1))
        assert config.failure_after == {0: 3, 2: 1}

    def test_failure_spec_requires_dynamic(self):
        with pytest.raises(ConfigurationError):
            PDTLConfig(procs_per_node=2, failure_spec={0: 1})

    def test_failure_spec_must_leave_a_survivor(self):
        with pytest.raises(ConfigurationError):
            PDTLConfig(
                procs_per_node=2, scheduling="dynamic", failure_spec={0: 0, 1: 0}
            )

    def test_failure_spec_worker_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            PDTLConfig(procs_per_node=2, scheduling="dynamic", failure_spec={7: 1})

    def test_chunk_edges_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PDTLConfig(scheduling="dynamic", chunk_edges=0)

    def test_chunk_edges_requires_dynamic(self):
        with pytest.raises(ConfigurationError):
            PDTLConfig(chunk_edges=4096)
