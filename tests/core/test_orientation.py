"""Unit tests for degree-based ordering and orientation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.orientation import (
    degree_order_keys,
    orient_csr,
    orient_graph,
    precedes,
)
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import complete_graph, rmat, watts_strogatz


class TestDegreeOrder:
    def test_lower_degree_precedes(self):
        degrees = np.array([1, 3, 2])
        assert precedes(0, 1, degrees)
        assert precedes(2, 1, degrees)
        assert not precedes(1, 0, degrees)

    def test_ties_broken_by_vertex_id(self):
        degrees = np.array([2, 2, 2])
        assert precedes(0, 1, degrees)
        assert precedes(1, 2, degrees)
        assert not precedes(2, 0, degrees)

    def test_keys_are_strict_total_order(self):
        degrees = np.array([3, 1, 3, 1, 2])
        keys = degree_order_keys(degrees)
        assert len(set(keys.tolist())) == 5
        for u in range(5):
            for v in range(5):
                if u == v:
                    continue
                assert (keys[u] < keys[v]) == precedes(u, v, degrees)

    def test_keys_monotone_in_degree(self):
        degrees = np.array([0, 5, 10, 10])
        keys = degree_order_keys(degrees)
        assert keys[0] < keys[1] < keys[2] < keys[3]


class TestOrientCSR:
    def test_each_edge_appears_once(self):
        g = CSRGraph.from_edgelist(complete_graph(6))
        oriented = orient_csr(g)
        assert oriented.directed
        assert oriented.num_edges == g.num_undirected_edges

    def test_orientation_is_acyclic(self):
        import networkx as nx

        g = CSRGraph.from_edgelist(rmat(6, edge_factor=6, seed=0))
        oriented = orient_csr(g)
        assert nx.is_directed_acyclic_graph(oriented.to_networkx())

    def test_edges_point_from_smaller_to_larger(self):
        g = CSRGraph.from_edgelist(watts_strogatz(50, k=6, p=0.2, seed=1))
        oriented = orient_csr(g)
        degrees = g.degrees
        for u, v in oriented.iter_edges():
            assert precedes(u, v, degrees)

    def test_adjacency_stays_sorted(self):
        g = CSRGraph.from_edgelist(rmat(7, edge_factor=6, seed=2))
        oriented = orient_csr(g)
        oriented.check_sorted_adjacency()

    def test_max_out_degree_bounded_by_sqrt_2m(self):
        # classic property of the degree orientation: d*(v) = O(sqrt(|E|))
        g = CSRGraph.from_edgelist(rmat(8, edge_factor=8, seed=3))
        oriented = orient_csr(g)
        bound = 2 * np.sqrt(2 * g.num_undirected_edges) + 1
        assert oriented.max_degree <= bound

    def test_rejects_directed_input(self):
        g = orient_csr(CSRGraph.from_edgelist(complete_graph(4)))
        with pytest.raises(ValueError):
            orient_csr(g)

    def test_empty_graph(self):
        oriented = orient_csr(CSRGraph.empty(5))
        assert oriented.num_edges == 0
        assert oriented.num_vertices == 5

    def test_star_graph_orientation(self):
        # star: leaves have degree 1 and the hub n-1, so all edges point to the hub
        g = CSRGraph.from_edgelist(EdgeList([(0, i) for i in range(1, 6)]))
        oriented = orient_csr(g)
        for u, v in oriented.iter_edges():
            assert v == 0


class TestOrientGraphOnDisk:
    @pytest.fixture
    def on_disk(self, device):
        g = CSRGraph.from_edgelist(rmat(7, edge_factor=6, seed=4))
        return g, write_graph(device, "g", g)

    def test_matches_in_memory_orientation(self, on_disk):
        g, gf = on_disk
        result = orient_graph(gf, num_workers=1)
        assert result.oriented.to_csr() == orient_csr(g)

    def test_parallel_matches_sequential(self, on_disk):
        g, gf = on_disk
        sequential = orient_graph(gf, num_workers=1, output_name="seq")
        parallel = orient_graph(gf, num_workers=4, output_name="par")
        assert sequential.oriented.to_csr() == parallel.oriented.to_csr()

    def test_degree_arrays_consistent(self, on_disk):
        g, gf = on_disk
        result = orient_graph(gf, num_workers=2)
        np.testing.assert_array_equal(
            result.out_degrees + result.in_degrees, g.degrees
        )
        assert result.max_out_degree == int(result.out_degrees.max())

    def test_oriented_edge_count_is_half(self, on_disk):
        g, gf = on_disk
        result = orient_graph(gf, num_workers=3)
        assert result.num_edges == g.num_undirected_edges

    def test_rejects_oriented_input(self, on_disk, device):
        _, gf = on_disk
        oriented = orient_graph(gf).oriented
        with pytest.raises(ValueError):
            orient_graph(oriented)

    def test_invalid_worker_count(self, on_disk):
        _, gf = on_disk
        with pytest.raises(ValueError):
            orient_graph(gf, num_workers=0)

    def test_invalid_executor_combinations(self, on_disk):
        _, gf = on_disk
        with pytest.raises(ValueError, match="executor must be"):
            orient_graph(gf, executor="bogus")
        with pytest.raises(ValueError, match="requires a shared"):
            orient_graph(gf, executor="processes")
        with pytest.raises(ValueError, match="conflicts with executor"):
            orient_graph(gf, executor="processes", shared=object(), parallel=False)

    def test_output_written_to_requested_device(self, on_disk, tmp_path):
        from repro.externalmem.blockio import BlockDevice

        _, gf = on_disk
        other = BlockDevice(tmp_path / "other")
        result = orient_graph(gf, device=other, output_name="oriented_copy")
        assert other.exists("oriented_copy.adj")
        assert result.oriented.device is other

    def test_elapsed_time_recorded(self, on_disk):
        _, gf = on_disk
        assert orient_graph(gf).elapsed_seconds >= 0.0

    def test_empty_graph_on_disk(self, device):
        g = CSRGraph.empty(4)
        gf = write_graph(device, "empty", g)
        result = orient_graph(gf)
        assert result.num_edges == 0
        assert result.max_out_degree == 0
