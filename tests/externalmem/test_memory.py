"""Unit tests for the MemoryBudget allocator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.externalmem.memory import MemoryBudget


class TestAllocation:
    def test_basic_allocation(self):
        budget = MemoryBudget(1000)
        budget.allocate("a", 400)
        assert budget.used == 400
        assert budget.free == 600

    def test_capacity_parsing(self):
        assert MemoryBudget("1KB").capacity == 1024
        assert MemoryBudget("2MB").capacity == 2 * 1024 * 1024

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            MemoryBudget(0)

    def test_over_allocation_raises(self):
        budget = MemoryBudget(100)
        budget.allocate("a", 80)
        with pytest.raises(OutOfMemoryError) as excinfo:
            budget.allocate("b", 30)
        assert excinfo.value.requested == 30
        assert excinfo.value.available == 20

    def test_reallocation_replaces_previous(self):
        budget = MemoryBudget(100)
        budget.allocate("a", 80)
        budget.allocate("a", 40)  # shrink, should not raise
        assert budget.used == 40
        budget.allocate("a", 90)  # grow within capacity
        assert budget.used == 90

    def test_release(self):
        budget = MemoryBudget(100)
        budget.allocate("a", 50)
        budget.release("a")
        assert budget.used == 0
        budget.release("missing")  # no-op

    def test_release_all(self):
        budget = MemoryBudget(100)
        budget.allocate("a", 10)
        budget.allocate("b", 20)
        budget.release_all()
        assert budget.used == 0

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            MemoryBudget(100).allocate("a", -1)

    def test_peak_usage_tracking(self):
        budget = MemoryBudget(100)
        budget.allocate("a", 60)
        budget.release("a")
        budget.allocate("b", 30)
        assert budget.peak_usage == 60

    def test_require_transient_check(self):
        budget = MemoryBudget(100)
        budget.allocate("a", 50)
        budget.require(40)  # fits
        with pytest.raises(OutOfMemoryError):
            budget.require(60)

    def test_allocate_array(self):
        budget = MemoryBudget(10_000)
        arr = budget.allocate_array("scratch", 100, dtype=np.int64)
        assert arr.shape == (100,)
        assert budget.used == 800

    def test_allocate_array_too_large(self):
        budget = MemoryBudget(100)
        with pytest.raises(OutOfMemoryError):
            budget.allocate_array("big", 1000, dtype=np.int64)

    def test_max_items(self):
        budget = MemoryBudget(1000)
        assert budget.max_items(8) == 125
        budget.allocate("a", 200)
        assert budget.max_items(8) == 100
        assert budget.max_items(8, reserve_fraction=0.5) == (800 - 500) // 8

    def test_max_items_invalid(self):
        with pytest.raises(ValueError):
            MemoryBudget(100).max_items(0)

    def test_repr_contains_sizes(self):
        text = repr(MemoryBudget(2048))
        assert "2.0KiB" in text
