"""Unit tests for the simulated block device and block files."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PDTLError
from repro.externalmem.blockio import BlockDevice, BlockFile, DiskModel
from repro.utils import ceil_div


class TestDeviceBasics:
    def test_creates_root_directory(self, tmp_path):
        root = tmp_path / "nested" / "disk"
        BlockDevice(root)
        assert root.is_dir()

    def test_block_size_parsing(self, tmp_path):
        dev = BlockDevice(tmp_path, block_size="4k")
        assert dev.block_size == 4096

    def test_invalid_block_size(self, tmp_path):
        with pytest.raises(ValueError):
            BlockDevice(tmp_path, block_size=0)

    def test_file_lifecycle(self, tmp_path):
        dev = BlockDevice(tmp_path)
        assert not dev.exists("a.bin")
        dev.open("a.bin")
        assert dev.exists("a.bin")
        assert dev.file_size("a.bin") == 0
        dev.delete("a.bin")
        assert not dev.exists("a.bin")

    def test_list_files(self, tmp_path):
        dev = BlockDevice(tmp_path)
        dev.open("b.bin")
        dev.open("a.bin")
        assert dev.list_files() == ["a.bin", "b.bin"]

    def test_clear_removes_everything(self, tmp_path):
        dev = BlockDevice(tmp_path)
        dev.open("a.bin").append_array(np.arange(10))
        dev.clear()
        assert dev.list_files() == []

    def test_path_escape_rejected(self, tmp_path):
        dev = BlockDevice(tmp_path / "disk")
        with pytest.raises(PDTLError):
            dev.path("../outside.bin")


class TestAccounting:
    def test_sequential_read_counts_blocks(self, tmp_path):
        dev = BlockDevice(tmp_path, block_size=64)
        f = dev.open("data.bin")
        f.append_array(np.arange(100, dtype=np.int64))  # 800 bytes
        dev.stats.reset()
        f.read_array(0, 100)
        assert dev.stats.blocks_read == ceil_div(800, 64)
        assert dev.stats.bytes_read == 800
        assert dev.stats.read_calls == 1

    def test_write_accounting(self, tmp_path):
        dev = BlockDevice(tmp_path, block_size=64)
        f = dev.open("data.bin")
        f.append_array(np.arange(16, dtype=np.int64))  # 128 bytes = 2 blocks
        assert dev.stats.blocks_written == 2
        assert dev.stats.bytes_written == 128

    def test_sequential_vs_random_classification(self, tmp_path):
        dev = BlockDevice(tmp_path, block_size=64)
        f = dev.open("data.bin")
        f.append_array(np.arange(200, dtype=np.int64))
        dev.stats.reset()
        f.read_array(0, 8)     # block 0: head is at the end of the write -> random
        f.read_array(8, 8)     # block 1: follows block 0 -> sequential
        f.read_array(16, 8)    # block 2: sequential continuation
        f.read_array(120, 8)   # far block -> random
        assert dev.stats.sequential_reads == 2
        assert dev.stats.random_reads == 2

    def test_device_time_accumulates(self, tmp_path):
        model = DiskModel(bandwidth_bytes_per_s=1e6, seek_latency_s=0.0)
        dev = BlockDevice(tmp_path, block_size=64, model=model)
        f = dev.open("data.bin")
        f.append_array(np.arange(1000, dtype=np.int64))
        before = dev.stats.device_seconds
        f.read_array(0, 1000)
        # 8000 bytes at 1 MB/s = 8 ms
        assert dev.stats.device_seconds - before == pytest.approx(0.008, rel=0.01)

    def test_copy_file_charges_both_devices(self, tmp_path):
        src = BlockDevice(tmp_path / "src", block_size=64)
        dst = BlockDevice(tmp_path / "dst", block_size=64)
        f = src.open("data.bin")
        f.append_array(np.arange(64, dtype=np.int64))
        src.stats.reset()
        nbytes = src.copy_file("data.bin", dst)
        assert nbytes == 512
        assert src.stats.bytes_read == 512
        assert dst.stats.bytes_written == 512
        assert dst.file_size("data.bin") == 512

    def test_copy_missing_file_raises(self, tmp_path):
        src = BlockDevice(tmp_path / "src")
        dst = BlockDevice(tmp_path / "dst")
        with pytest.raises(PDTLError):
            src.copy_file("missing.bin", dst)


class TestBlockFile:
    def test_array_roundtrip(self, tmp_path):
        dev = BlockDevice(tmp_path)
        f = dev.open("arr.bin")
        data = np.arange(50, dtype=np.int64)
        f.append_array(data)
        np.testing.assert_array_equal(f.read_array(0, 50), data)

    def test_partial_reads(self, tmp_path):
        dev = BlockDevice(tmp_path)
        f = dev.open("arr.bin")
        f.append_array(np.arange(100, dtype=np.int64))
        np.testing.assert_array_equal(f.read_array(10, 5), np.arange(10, 15))

    def test_write_at_offset(self, tmp_path):
        dev = BlockDevice(tmp_path)
        f = dev.open("arr.bin")
        f.append_array(np.zeros(10, dtype=np.int64))
        f.write_array(np.array([7, 8], dtype=np.int64), offset_items=3)
        out = f.read_array(0, 10)
        assert out[3] == 7 and out[4] == 8 and out[0] == 0

    def test_other_dtypes(self, tmp_path):
        dev = BlockDevice(tmp_path)
        f = dev.open("f64.bin")
        data = np.linspace(0, 1, 20)
        f.append_array(data)
        np.testing.assert_allclose(f.read_array(0, 20, dtype=np.float64), data)

    def test_num_items(self, tmp_path):
        dev = BlockDevice(tmp_path)
        f = dev.open("arr.bin")
        f.append_array(np.arange(12, dtype=np.int64))
        assert f.num_items() == 12
        assert f.num_items(dtype=np.int32) == 24

    def test_iter_chunks_covers_file(self, tmp_path):
        dev = BlockDevice(tmp_path)
        f = dev.open("arr.bin")
        data = np.arange(105, dtype=np.int64)
        f.append_array(data)
        chunks = list(f.iter_chunks(20))
        assert sum(c.shape[0] for c in chunks) == 105
        np.testing.assert_array_equal(np.concatenate(chunks), data)

    def test_iter_chunks_invalid(self, tmp_path):
        dev = BlockDevice(tmp_path)
        f = dev.open("arr.bin")
        with pytest.raises(ValueError):
            list(f.iter_chunks(0))

    def test_truncate(self, tmp_path):
        dev = BlockDevice(tmp_path)
        f = dev.open("arr.bin")
        f.append_array(np.arange(10, dtype=np.int64))
        f.truncate(0)
        assert f.size_bytes == 0

    def test_negative_offsets_rejected(self, tmp_path):
        dev = BlockDevice(tmp_path)
        f = dev.open("arr.bin")
        with pytest.raises(ValueError):
            f.read_bytes(-1, 4)
        with pytest.raises(ValueError):
            f.write_bytes(-1, b"xx")

    def test_delete_via_file_handle(self, tmp_path):
        dev = BlockDevice(tmp_path)
        f = dev.open("arr.bin")
        f.delete()
        assert not dev.exists("arr.bin")


class TestDiskModel:
    def test_sequential_faster_than_random(self):
        model = DiskModel(bandwidth_bytes_per_s=100e6, seek_latency_s=1e-3)
        assert model.transfer_time(4096, True) < model.transfer_time(4096, False)

    def test_zero_bandwidth_means_free_transfer(self):
        model = DiskModel(bandwidth_bytes_per_s=0.0, seek_latency_s=0.0)
        assert model.transfer_time(1 << 20, True) == 0.0


class TestReadahead:
    """The aligned read-ahead buffer: same bytes, same accounting, fewer host reads."""

    def _filled_file(self, tmp_path, n_items=5000, block_size=512):
        dev = BlockDevice(tmp_path / "disk", block_size=block_size)
        f = dev.open("data.bin")
        data = np.arange(n_items, dtype=np.int64)
        f.append_array(data)
        return dev, f, data

    def test_reads_identical_with_and_without_buffer(self, tmp_path):
        dev, f, data = self._filled_file(tmp_path)
        plain = dev.open("data.bin")
        buffered = dev.open("data.bin")
        buffered.set_readahead(2048)
        rng = np.random.default_rng(0)
        for _ in range(50):
            off = int(rng.integers(0, data.shape[0]))
            count = int(rng.integers(0, data.shape[0] - off + 10))
            np.testing.assert_array_equal(
                buffered.read_array(off, min(count, data.shape[0] - off)),
                plain.read_array(off, min(count, data.shape[0] - off)),
            )

    def test_read_spanning_many_windows(self, tmp_path):
        dev, f, data = self._filled_file(tmp_path)
        buffered = dev.open("data.bin")
        buffered.set_readahead(512)  # one block window, read spans many
        np.testing.assert_array_equal(buffered.read_array(3, 4000), data[3:4003])

    def test_read_past_eof_truncates_like_plain_read(self, tmp_path):
        dev, f, data = self._filled_file(tmp_path, n_items=100)
        buffered = dev.open("data.bin")
        buffered.set_readahead(4096)
        raw = buffered.read_bytes(90 * 8, 1000)
        assert len(raw) == 10 * 8
        np.testing.assert_array_equal(np.frombuffer(raw, dtype=np.int64), data[90:])

    def test_iostats_bit_identical(self, tmp_path):
        stats = {}
        for label, readahead in (("plain", 0), ("buffered", 1 << 14)):
            dev = BlockDevice(tmp_path / label, block_size=512)
            f = dev.open("data.bin")
            f.append_array(np.arange(4096, dtype=np.int64))
            dev.stats.reset()
            reader = dev.open("data.bin")
            if readahead:
                reader.set_readahead(readahead)
            offset = 0
            while offset < 4096:
                reader.read_array(offset, min(128, 4096 - offset))
                offset += 128
            stats[label] = dev.stats.as_dict()
        assert stats["plain"] == stats["buffered"]

    def test_write_through_handle_invalidates_buffer(self, tmp_path):
        dev, f, data = self._filled_file(tmp_path, n_items=64)
        buffered = dev.open("data.bin")
        buffered.set_readahead(4096)
        np.testing.assert_array_equal(buffered.read_array(0, 64), data)
        new = np.arange(100, 164, dtype=np.int64)
        buffered.write_array(new)
        np.testing.assert_array_equal(buffered.read_array(0, 64), new)

    def test_readahead_accepts_sizes_and_disables(self, tmp_path):
        dev, f, data = self._filled_file(tmp_path)
        g = dev.open("data.bin")
        g.set_readahead("16k")
        np.testing.assert_array_equal(g.read_array(0, 10), data[:10])
        g.set_readahead(0)
        np.testing.assert_array_equal(g.read_array(0, 10), data[:10])


class TestFdCache:
    """The raw-fd cache must be transparent and bounded."""

    def test_reads_after_many_files(self, tmp_path):
        from repro.externalmem import blockio

        dev = BlockDevice(tmp_path)
        many = blockio.MAX_CACHED_FDS + 20
        for i in range(many):
            dev.open(f"f{i}.bin").append_array(np.array([i], dtype=np.int64))
        # every file readable even though early descriptors were evicted
        for i in range(many):
            assert int(dev.open(f"f{i}.bin").read_array(0, 1)[0]) == i
        assert len(dev._fds) <= blockio.MAX_CACHED_FDS

    def test_delete_then_recreate(self, tmp_path):
        dev = BlockDevice(tmp_path)
        f = dev.open("x.bin")
        f.append_array(np.arange(4, dtype=np.int64))
        dev.delete("x.bin")
        assert not dev.exists("x.bin")
        g = dev.open("x.bin")
        assert g.num_items() == 0
        g.append_array(np.array([7], dtype=np.int64))
        assert int(dev.open("x.bin").read_array(0, 1)[0]) == 7

    def test_device_close_idempotent(self, tmp_path):
        dev = BlockDevice(tmp_path)
        dev.open("a.bin").append_array(np.arange(3, dtype=np.int64))
        dev.close()
        dev.close()
        # reads transparently reopen descriptors
        assert dev.open("a.bin").num_items() == 3

    def test_delete_while_descriptor_pinned(self, tmp_path):
        import os

        dev = BlockDevice(tmp_path)
        f = dev.open("pinned.bin")
        f.append_array(np.arange(4, dtype=np.int64))
        entry = dev._acquire_fd("pinned.bin", f.path, create=False)
        dev.delete("pinned.bin")  # must not close the pinned descriptor
        assert len(os.pread(entry.fd, 8, 0)) == 8  # still readable
        dev._release_fd(entry)  # last release closes it
        with pytest.raises(OSError):
            os.fstat(entry.fd)
        # the name is gone and can be recreated independently
        g = dev.open("pinned.bin")
        assert g.num_items() == 0


class TestMmapReads:
    """The mmap read path sits strictly below the accounting layer."""

    def _fill(self, dev: BlockDevice) -> None:
        f = dev.open("data.bin")
        f.append_array(np.arange(1000, dtype=np.int64))
        g = dev.open("other.bin")
        g.append_array(np.arange(64, dtype=np.int64))

    def _access_pattern(self, dev: BlockDevice) -> list[bytes]:
        f = dev.open("data.bin")
        g = dev.open("other.bin")
        out = [
            f.read_bytes(0, 256),
            f.read_bytes(4096, 512),          # random jump
            f.read_bytes(7900, 400),          # short read at EOF
            g.read_bytes(8, 128),
            f.read_bytes(256, 8192),
            f.read_bytes(0, 0),               # zero-length
        ]
        out.append(bytes(f.read_array(10, 20)))
        return out

    def test_bytes_and_iostats_identical_on_off(self, tmp_path):
        results = {}
        for flag in (False, True):
            dev = BlockDevice(tmp_path / str(flag), block_size=512, mmap_reads=flag)
            self._fill(dev)
            dev.stats.reset()
            results[flag] = (self._access_pattern(dev), dev.stats.as_dict())
        assert results[False][0] == results[True][0]
        assert results[False][1] == results[True][1]

    def test_write_invalidates_mapping(self, tmp_path):
        dev = BlockDevice(tmp_path, block_size=512, mmap_reads=True)
        f = dev.open("data.bin")
        f.append_array(np.arange(100, dtype=np.int64))
        assert np.array_equal(f.read_array(0, 100), np.arange(100))  # map cached
        f.write_array(np.full(100, 7, dtype=np.int64))
        assert np.array_equal(f.read_array(0, 100), np.full(100, 7))

    def test_append_after_read_is_visible(self, tmp_path):
        dev = BlockDevice(tmp_path, block_size=512, mmap_reads=True)
        f = dev.open("data.bin")
        f.append_array(np.arange(10, dtype=np.int64))
        assert f.read_array(0, 10)[-1] == 9
        f.append_array(np.arange(10, 20, dtype=np.int64))
        assert np.array_equal(f.read_array(0, 20), np.arange(20))

    def test_truncate_invalidates_mapping(self, tmp_path):
        dev = BlockDevice(tmp_path, block_size=512, mmap_reads=True)
        f = dev.open("data.bin")
        f.append_array(np.arange(50, dtype=np.int64))
        f.read_array(0, 50)
        f.truncate(8 * 10)
        assert f.num_items() == 10
        assert np.array_equal(f.read_array(0, 10), np.arange(10))

    def test_delete_and_recreate(self, tmp_path):
        dev = BlockDevice(tmp_path, block_size=512, mmap_reads=True)
        f = dev.open("data.bin")
        f.append_array(np.arange(10, dtype=np.int64))
        f.read_array(0, 10)
        dev.delete("data.bin")
        f2 = dev.open("data.bin")
        f2.append_array(np.full(10, 3, dtype=np.int64))
        assert np.array_equal(f2.read_array(0, 10), np.full(10, 3))

    def test_empty_file_reads(self, tmp_path):
        dev = BlockDevice(tmp_path, block_size=512, mmap_reads=True)
        f = dev.open("empty.bin")
        assert f.read_bytes(0, 100) == b""

    def test_copy_file_invalidates_destination(self, tmp_path):
        src = BlockDevice(tmp_path / "src", block_size=512)
        dst = BlockDevice(tmp_path / "dst", block_size=512, mmap_reads=True)
        a = src.open("a.bin")
        a.append_array(np.arange(20, dtype=np.int64))
        src.copy_file("a.bin", dst)
        d = dst.open("a.bin")
        assert np.array_equal(d.read_array(0, 20), np.arange(20))
        b = src.open("a.bin")
        b.write_array(np.full(20, 9, dtype=np.int64))
        src.copy_file("a.bin", dst)
        assert np.array_equal(d.read_array(0, 20), np.full(20, 9))

    def test_readahead_composes_with_mmap(self, tmp_path):
        dev = BlockDevice(tmp_path, block_size=512, mmap_reads=True)
        f = dev.open("data.bin")
        f.append_array(np.arange(2000, dtype=np.int64))
        f.set_readahead(4096)
        dev.stats.reset()
        chunks = [f.read_array(i * 250, 250) for i in range(8)]
        assert np.array_equal(np.concatenate(chunks), np.arange(2000))
        plain = BlockDevice(tmp_path / "plain", block_size=512)
        p = plain.open("data.bin")
        p.append_array(np.arange(2000, dtype=np.int64))
        plain.stats.reset()
        for i in range(8):
            p.read_array(i * 250, 250)
        assert dev.stats.as_dict() == plain.stats.as_dict()

    def test_close_drops_mappings(self, tmp_path):
        dev = BlockDevice(tmp_path, block_size=512, mmap_reads=True)
        f = dev.open("data.bin")
        f.append_array(np.arange(10, dtype=np.int64))
        f.read_array(0, 10)
        assert dev._mmaps
        dev.close()
        assert not dev._mmaps
        assert np.array_equal(f.read_array(0, 10), np.arange(10))
