"""Unit tests for external merge sort of edge files."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.externalmem.blockio import BlockDevice
from repro.externalmem.extsort import (
    external_sort_edges,
    read_edge_file,
    write_edge_file,
)


def random_edges(m: int, n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=(m, 2), dtype=np.int64)


def is_lexsorted(edges: np.ndarray) -> bool:
    if edges.shape[0] <= 1:
        return True
    keys = edges[:, 0] * (edges[:, 1].max() + 1 if edges.size else 1) + edges[:, 1]
    # robust check without overflow concerns for test sizes
    for i in range(1, edges.shape[0]):
        a, b = edges[i - 1], edges[i]
        if (a[0], a[1]) > (b[0], b[1]):
            return False
    return True


class TestEdgeFileHelpers:
    def test_write_read_roundtrip(self, device):
        edges = random_edges(50, 20)
        write_edge_file(device, "edges.bin", edges)
        np.testing.assert_array_equal(read_edge_file(device, "edges.bin"), edges)

    def test_empty_file(self, device):
        write_edge_file(device, "empty.bin", np.empty((0, 2), dtype=np.int64))
        assert read_edge_file(device, "empty.bin").shape == (0, 2)


class TestExternalSort:
    def test_sorts_small_input_in_one_run(self, device):
        edges = random_edges(100, 30, seed=1)
        write_edge_file(device, "in.bin", edges)
        result = external_sort_edges(device, "in.bin", "out.bin", memory_bytes=1 << 20)
        assert result.num_runs == 1
        assert result.merge_passes == 0
        out = read_edge_file(device, "out.bin")
        assert is_lexsorted(out)
        assert out.shape == edges.shape

    def test_multi_run_merge(self, device):
        edges = random_edges(2000, 100, seed=2)
        write_edge_file(device, "in.bin", edges)
        # memory for only ~128 edges per run -> many runs and >= 1 merge pass
        result = external_sort_edges(device, "in.bin", "out.bin", memory_bytes=2048)
        assert result.num_runs > 1
        assert result.merge_passes >= 1
        out = read_edge_file(device, "out.bin")
        assert is_lexsorted(out)

    def test_output_is_permutation_of_input(self, device):
        edges = random_edges(500, 40, seed=3)
        write_edge_file(device, "in.bin", edges)
        external_sort_edges(device, "in.bin", "out.bin", memory_bytes=4096)
        out = read_edge_file(device, "out.bin")
        expected = edges[np.lexsort((edges[:, 1], edges[:, 0]))]
        np.testing.assert_array_equal(out, expected)

    def test_already_sorted_input(self, device):
        edges = random_edges(300, 30, seed=4)
        edges = edges[np.lexsort((edges[:, 1], edges[:, 0]))]
        write_edge_file(device, "in.bin", edges)
        external_sort_edges(device, "in.bin", "out.bin", memory_bytes=2048)
        np.testing.assert_array_equal(read_edge_file(device, "out.bin"), edges)

    def test_empty_input(self, device):
        write_edge_file(device, "in.bin", np.empty((0, 2), dtype=np.int64))
        result = external_sort_edges(device, "in.bin", "out.bin", memory_bytes=4096)
        assert result.num_edges == 0
        assert read_edge_file(device, "out.bin").shape == (0, 2)

    def test_duplicates_preserved(self, device):
        edges = np.array([[1, 2]] * 10 + [[0, 5]] * 5, dtype=np.int64)
        write_edge_file(device, "in.bin", edges)
        external_sort_edges(device, "in.bin", "out.bin", memory_bytes=512)
        out = read_edge_file(device, "out.bin")
        assert out.shape[0] == 15
        assert (out[:5] == [0, 5]).all()
        assert (out[5:] == [1, 2]).all()

    def test_input_left_intact(self, device):
        edges = random_edges(200, 20, seed=5)
        write_edge_file(device, "in.bin", edges)
        external_sort_edges(device, "in.bin", "out.bin", memory_bytes=1024)
        np.testing.assert_array_equal(read_edge_file(device, "in.bin"), edges)

    def test_temporary_runs_cleaned_up(self, device):
        edges = random_edges(1000, 50, seed=6)
        write_edge_file(device, "in.bin", edges)
        external_sort_edges(device, "in.bin", "out.bin", memory_bytes=1024)
        leftovers = [f for f in device.list_files() if f.startswith("_extsort")]
        assert leftovers == []

    def test_too_small_memory_rejected(self, device):
        write_edge_file(device, "in.bin", random_edges(10, 5))
        with pytest.raises(ConfigurationError):
            external_sort_edges(device, "in.bin", "out.bin", memory_bytes=16)

    def test_io_is_accounted(self, device):
        edges = random_edges(1000, 50, seed=7)
        write_edge_file(device, "in.bin", edges)
        device.stats.reset()
        external_sort_edges(device, "in.bin", "out.bin", memory_bytes=2048)
        # at minimum the input is read once and the output written once
        assert device.stats.bytes_read >= edges.nbytes
        assert device.stats.bytes_written >= edges.nbytes

    def test_invalid_merge_impl_rejected(self, device):
        write_edge_file(device, "in.bin", random_edges(10, 5))
        with pytest.raises(ConfigurationError):
            external_sort_edges(
                device, "in.bin", "out.bin", memory_bytes=4096, merge_impl="bogus"
            )


class TestFanInDerivation:
    """The derived fan-in must actually scale with the memory cap."""

    def _fan_in_for(self, device, memory_bytes: int) -> int:
        edges = random_edges(200, 30, seed=8)
        write_edge_file(device, "in.bin", edges)
        result = external_sort_edges(
            device, "in.bin", "fanout.bin", memory_bytes=memory_bytes
        )
        return result.fan_in

    def test_fan_in_scales_with_memory(self, device):
        # device block size is 512 bytes -> 32 edges per stream buffer
        small = self._fan_in_for(device, 1024)       # 64 edges of memory
        medium = self._fan_in_for(device, 16 * 1024)  # 1024 edges
        large = self._fan_in_for(device, 1 << 20)     # plenty
        assert small < medium < large
        # memory_edges // buffer_edges - 1, clamped to [2, 64]
        assert small == 2                                  # 64 // 32 - 1 == 1 -> clamp
        assert medium == (16 * 1024 // 16) // (512 // 16) - 1  # == 31

    def test_fan_in_clamped(self, device):
        assert self._fan_in_for(device, 256) == 2       # lower clamp
        assert self._fan_in_for(device, 1 << 24) == 64  # upper clamp

    def test_explicit_fan_in_respected(self, device):
        edges = random_edges(500, 30, seed=9)
        write_edge_file(device, "in.bin", edges)
        result = external_sort_edges(
            device, "in.bin", "out.bin", memory_bytes=1024, fan_in=3
        )
        assert result.fan_in == 3
        assert is_lexsorted(read_edge_file(device, "out.bin"))

    def test_phase_timings_recorded(self, device):
        edges = random_edges(2000, 50, seed=10)
        write_edge_file(device, "in.bin", edges)
        result = external_sort_edges(device, "in.bin", "out.bin", memory_bytes=1024)
        assert result.merge_passes >= 1
        assert result.formation_seconds > 0.0
        assert result.merge_seconds > 0.0


class TestMergeEdgeCases:
    """Edge cases the vectorised-merge rewrite left thin, exercised for
    both run-formation paths and both merge implementations."""

    def _out_bytes(self, device, name="out.bin") -> bytes:
        path = device.path(name)
        return path.read_bytes() if path.exists() else b""

    @pytest.mark.parametrize("formation", ["serial", "parallel"])
    @pytest.mark.parametrize("merge_impl", ["vectorized", "heapq"])
    def test_empty_input_file(self, device, formation, merge_impl):
        write_edge_file(device, "in.bin", np.empty((0, 2), dtype=np.int64))
        result = external_sort_edges(
            device,
            "in.bin",
            "out.bin",
            memory_bytes=4096,
            formation=formation,
            merge_impl=merge_impl,
        )
        assert result.num_edges == 0
        assert result.num_runs == 0
        assert result.merge_passes == 0
        assert result.formation_impl == formation
        assert read_edge_file(device, "out.bin").shape == (0, 2)

    @pytest.mark.parametrize("formation", ["serial", "parallel"])
    @pytest.mark.parametrize("merge_impl", ["vectorized", "heapq"])
    def test_single_run_smaller_than_one_block(self, device, formation, merge_impl):
        """A run below the device block size (512 B = 32 edges here) still
        round-trips through run formation and the final copy exactly."""
        edges = random_edges(20, 10, seed=3)
        write_edge_file(device, "in.bin", edges)
        result = external_sort_edges(
            device,
            "in.bin",
            "out.bin",
            memory_bytes=1 << 16,
            formation=formation,
            merge_impl=merge_impl,
        )
        assert result.num_runs == 1
        assert result.merge_passes == 0
        out = read_edge_file(device, "out.bin")
        assert out.nbytes < device.block_size
        expected = edges[np.lexsort((edges[:, 1], edges[:, 0]))]
        np.testing.assert_array_equal(out, expected)

    @pytest.mark.parametrize("formation", ["serial", "parallel"])
    def test_fan_in_clamped_low_end_to_end(self, device, formation):
        """Derived fan-in at the lower clamp (2): many binary merge passes,
        both merge impls byte-identical."""
        edges = random_edges(600, 40, seed=4)
        write_edge_file(device, "in.bin", edges)
        outputs = {}
        for merge_impl in ("vectorized", "heapq"):
            result = external_sort_edges(
                device,
                "in.bin",
                f"out_{merge_impl}.bin",
                memory_bytes=256,  # 16 edges/run, buffer 32 edges -> clamp at 2
                formation=formation,
                merge_impl=merge_impl,
            )
            assert result.fan_in == 2
            assert result.merge_passes >= 5  # ceil(log2(38 runs))
            outputs[merge_impl] = self._out_bytes(device, f"out_{merge_impl}.bin")
        assert outputs["vectorized"] == outputs["heapq"] != b""
        assert is_lexsorted(read_edge_file(device, "out_vectorized.bin"))

    @pytest.mark.parametrize("formation", ["serial", "parallel"])
    def test_fan_in_clamped_high_end_to_end(self, device, formation):
        """Derived fan-in at the upper clamp (64): one wide merge pass."""
        edges = random_edges(8000, 300, seed=5)
        write_edge_file(device, "in.bin", edges)
        result = external_sort_edges(
            device,
            "in.bin",
            "out.bin",
            memory_bytes=36864,  # 2304 edges -> 2304//32 - 1 = 71 -> clamp 64
            formation=formation,
        )
        assert result.fan_in == 64
        assert result.num_runs == 4
        assert result.merge_passes == 1
        assert is_lexsorted(read_edge_file(device, "out.bin"))

    def test_merge_impls_byte_identical_on_worker_runs(self, device):
        """heapq vs vectorized merges of the pool workers' runs: identical
        output bytes and identical accounting."""
        edges = random_edges(3000, 120, seed=6)
        write_edge_file(device, "in.bin", edges)
        stats = {}
        for merge_impl in ("vectorized", "heapq"):
            baseline = device.stats.snapshot()
            external_sort_edges(
                device,
                "in.bin",
                f"out_{merge_impl}.bin",
                memory_bytes=2048,
                formation="parallel",
                merge_impl=merge_impl,
            )
            stats[merge_impl] = device.stats.delta(baseline)
        assert (
            self._out_bytes(device, "out_vectorized.bin")
            == self._out_bytes(device, "out_heapq.bin")
            != b""
        )
        v, h = stats["vectorized"].as_dict(), stats["heapq"].as_dict()
        v.pop("device_seconds"), h.pop("device_seconds")  # float base differs
        assert v == h

    def test_negative_ids_fall_back_to_lexsort_in_workers(self, device):
        """Unpackable windows (negative ids) take the stable-lexsort
        fallback in the pool workers -- still byte-identical to serial."""
        rng = np.random.default_rng(7)
        edges = rng.integers(-50, 50, size=(900, 2), dtype=np.int64)
        write_edge_file(device, "in.bin", edges)
        for formation in ("serial", "parallel"):
            external_sort_edges(
                device,
                "in.bin",
                f"out_{formation}.bin",
                memory_bytes=1024,
                formation=formation,
            )
        assert (
            self._out_bytes(device, "out_serial.bin")
            == self._out_bytes(device, "out_parallel.bin")
            != b""
        )

    def test_invalid_formation_rejected(self, device):
        write_edge_file(device, "in.bin", random_edges(10, 5))
        with pytest.raises(ConfigurationError):
            external_sort_edges(
                device, "in.bin", "out.bin", memory_bytes=4096, formation="bogus"
            )
