"""Unit tests for IOStats counters and the Aggarwal–Vitter cost formulas."""

from __future__ import annotations

import pytest

from repro.externalmem.iostats import IOStats, scan_io_cost, sort_io_cost


class TestIOStats:
    def test_initial_state(self):
        stats = IOStats(block_size=1024)
        assert stats.total_blocks == 0
        assert stats.total_bytes == 0
        assert stats.device_seconds == 0.0

    def test_record_read(self):
        stats = IOStats()
        stats.record_read(blocks=3, nbytes=100, sequential=True)
        stats.record_read(blocks=2, nbytes=50, sequential=False)
        assert stats.blocks_read == 5
        assert stats.sequential_reads == 3
        assert stats.random_reads == 2
        assert stats.bytes_read == 150
        assert stats.read_calls == 2

    def test_record_write(self):
        stats = IOStats()
        stats.record_write(blocks=4, nbytes=200, sequential=True)
        assert stats.blocks_written == 4
        assert stats.sequential_writes == 4
        assert stats.bytes_written == 200

    def test_merge(self):
        a = IOStats()
        a.record_read(2, 100, True)
        a.add_device_time(0.5)
        b = IOStats()
        b.record_write(3, 200, False)
        b.add_device_time(0.25)
        a.merge(b)
        assert a.total_blocks == 5
        assert a.total_bytes == 300
        assert a.device_seconds == pytest.approx(0.75)

    def test_snapshot_is_independent(self):
        a = IOStats()
        a.record_read(1, 10, True)
        snap = a.snapshot()
        a.record_read(1, 10, True)
        assert snap.blocks_read == 1
        assert a.blocks_read == 2

    def test_reset_preserves_block_size(self):
        a = IOStats(block_size=2048)
        a.record_read(1, 10, True)
        a.reset()
        assert a.blocks_read == 0
        assert a.block_size == 2048

    def test_as_dict_keys(self):
        d = IOStats().as_dict()
        assert "blocks_read" in d and "device_seconds" in d


class TestScanCost:
    def test_exact_multiple(self):
        assert scan_io_cost(1000, 100) == 10

    def test_rounds_up(self):
        assert scan_io_cost(1001, 100) == 11

    def test_zero_elements(self):
        assert scan_io_cost(0, 100) == 0

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            scan_io_cost(10, 0)


class TestSortCost:
    def test_fits_in_memory_is_single_pass(self):
        # data smaller than memory: one read+write pass ~ N/B
        assert sort_io_cost(1000, memory_elements=10_000, block_size_elements=100) == 10

    def test_larger_than_memory_needs_more_passes(self):
        small_memory = sort_io_cost(100_000, memory_elements=1_000, block_size_elements=10)
        big_memory = sort_io_cost(100_000, memory_elements=50_000, block_size_elements=10)
        assert small_memory > big_memory

    def test_monotone_in_input_size(self):
        a = sort_io_cost(10_000, 1_000, 10)
        b = sort_io_cost(100_000, 1_000, 10)
        assert b > a

    def test_zero_elements(self):
        assert sort_io_cost(0, 100, 10) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            sort_io_cost(10, 0, 10)
        with pytest.raises(ValueError):
            sort_io_cost(10, 100, 0)

    def test_scan_is_lower_bound(self):
        # sorting can never be cheaper than scanning the same data
        n, m, b = 50_000, 2_000, 50
        assert sort_io_cost(n, m, b) >= scan_io_cost(n, b)
