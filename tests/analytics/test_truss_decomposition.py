"""Unit tests for the vectorised k-truss decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics.truss import (
    TrussResult,
    canonical_edges,
    truss_decomposition,
    trussness_reference,
    truss_summary_rows,
    undirected_edge_supports,
)
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import complete_graph, erdos_renyi, ring_graph


def graph_from_edges(edges, n):
    return CSRGraph.from_edgelist(EdgeList(np.array(edges, dtype=np.int64), n))


class TestCanonicalEdges:
    def test_lexicographic_u_lt_v(self):
        graph = CSRGraph.from_edgelist(complete_graph(4))
        edges = canonical_edges(graph)
        assert edges.shape == (6, 2)
        assert np.all(edges[:, 0] < edges[:, 1])
        keys = edges[:, 0] * 4 + edges[:, 1]
        assert np.all(np.diff(keys) > 0)

    def test_rejects_directed(self):
        from repro.core.orientation import orient_csr

        oriented = orient_csr(CSRGraph.from_edgelist(complete_graph(4)))
        with pytest.raises(ValueError):
            canonical_edges(oriented)


class TestUndirectedEdgeSupports:
    def test_triangle_graph(self):
        graph = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], 4)
        supports = undirected_edge_supports(graph)
        # canonical order: (0,1), (0,2), (1,2), (2,3)
        np.testing.assert_array_equal(supports, [1, 1, 1, 0])

    def test_sum_is_three_times_triangles(self):
        from repro.baselines.inmemory import forward_count

        graph = CSRGraph.from_edgelist(erdos_renyi(50, 0.2, seed=3))
        assert int(undirected_edge_supports(graph).sum()) == 3 * forward_count(graph)

    def test_batching_is_invisible(self):
        graph = CSRGraph.from_edgelist(erdos_renyi(60, 0.2, seed=4))
        np.testing.assert_array_equal(
            undirected_edge_supports(graph),
            undirected_edge_supports(graph, batch_edges=7),
        )


class TestTrussDecomposition:
    def test_complete_graph_single_truss(self):
        result = truss_decomposition(CSRGraph.from_edgelist(complete_graph(6)))
        assert np.all(result.trussness == 6)
        assert result.max_k == 6

    def test_triangle_free_graph_all_two(self):
        result = truss_decomposition(CSRGraph.from_edgelist(ring_graph(10)))
        assert np.all(result.trussness == 2)
        assert result.max_k == 2

    def test_two_cliques_with_bridge(self):
        """Two K4s joined by a bridge edge: clique edges truss 4, bridge 2."""
        edges = []
        for base in (0, 4):
            for i in range(4):
                for j in range(i + 1, 4):
                    edges.append((base + i, base + j))
        edges.append((3, 4))  # the bridge, in no triangle
        graph = graph_from_edges(edges, 8)
        result = truss_decomposition(graph)
        canon = canonical_edges(graph)
        bridge = np.nonzero((canon[:, 0] == 3) & (canon[:, 1] == 4))[0]
        assert result.trussness[bridge] == 2
        others = np.ones(canon.shape[0], dtype=bool)
        others[bridge] = False
        assert np.all(result.trussness[others] == 4)

    def test_accepts_precomputed_supports(self):
        graph = CSRGraph.from_edgelist(erdos_renyi(40, 0.25, seed=9))
        edges = canonical_edges(graph)
        supports = undirected_edge_supports(graph, edges)
        given = truss_decomposition(graph, supports=supports, edges=edges)
        derived = truss_decomposition(graph)
        np.testing.assert_array_equal(given.trussness, derived.trussness)

    def test_support_length_mismatch_raises(self):
        graph = CSRGraph.from_edgelist(complete_graph(4))
        with pytest.raises(ValueError):
            truss_decomposition(graph, supports=np.zeros(3, dtype=np.int64))

    def test_rejects_directed(self):
        from repro.core.orientation import orient_csr

        oriented = orient_csr(CSRGraph.from_edgelist(complete_graph(4)))
        with pytest.raises(ValueError):
            truss_decomposition(oriented)

    def test_empty_graph(self):
        graph = CSRGraph.from_edgelist(EdgeList(np.empty((0, 2), dtype=np.int64), 5))
        result = truss_decomposition(graph)
        assert result.num_edges == 0
        # regression: max_k used to report the sentinel 2 although every
        # k-truss of an edgeless graph is empty -- "the largest k with a
        # non-empty k-truss" does not exist, so the explicit answer is 0
        assert result.max_k == 0
        assert result.summary_rows() == []
        assert result.truss_edge_mask(2).shape == (0,)

    def test_truss_subgraph_above_max_k_preserves_vertices(self):
        """k > max_k yields an empty truss that keeps the vertex universe.

        The delta path deletes edges down to empty trusses, so the empty
        kept-edge array must flow through ``CSRGraph.from_edgelist`` without
        shape drift and the result must round-trip through another
        decomposition on the same vertex ids.
        """
        graph = CSRGraph.from_edgelist(complete_graph(5))
        result = truss_decomposition(graph)
        sub = result.truss_subgraph(result.max_k + 3)
        assert sub.num_vertices == graph.num_vertices
        assert not sub.directed
        assert canonical_edges(sub).shape == (0, 2)
        again = truss_decomposition(sub)
        assert again.num_vertices == graph.num_vertices
        assert again.max_k == 0
        assert again.truss_subgraph(2).num_vertices == graph.num_vertices

    def test_keep_triangles_retains_table(self):
        graph = CSRGraph.from_edgelist(erdos_renyi(40, 0.25, seed=7))
        plain = truss_decomposition(graph)
        kept = truss_decomposition(graph, keep_triangles=True)
        assert plain.tri_edges is None
        assert kept.tri_edges is not None and kept.tri_edges.shape[1] == 3
        # the table is the real triangle set: supports are its bincount
        m = kept.num_edges
        np.testing.assert_array_equal(
            np.bincount(kept.tri_edges.reshape(-1), minlength=m), kept.support
        )
        np.testing.assert_array_equal(plain.trussness, kept.trussness)

    def test_matches_reference_on_random_graph(self):
        graph = CSRGraph.from_edgelist(erdos_renyi(70, 0.2, seed=11))
        np.testing.assert_array_equal(
            truss_decomposition(graph).trussness, trussness_reference(graph)
        )

    def test_matches_networkx_k_truss(self):
        """Independent oracle: every k-truss subgraph equals networkx's."""
        nx = pytest.importorskip("networkx")
        graph = CSRGraph.from_edgelist(erdos_renyi(80, 0.12, seed=3))
        result = truss_decomposition(graph)
        reference = nx.Graph(list(map(tuple, canonical_edges(graph))))
        for k in range(2, result.max_k + 2):  # one past max_k: empty truss
            ours = {
                tuple(edge) for edge in canonical_edges(result.truss_subgraph(k))
            }
            theirs = {
                tuple(sorted(edge)) for edge in nx.k_truss(reference, k).edges()
            }
            assert ours == theirs, k


class TestTrussResultHelpers:
    @pytest.fixture()
    def result(self) -> TrussResult:
        return truss_decomposition(CSRGraph.from_edgelist(erdos_renyi(50, 0.25, seed=2)))

    def test_truss_edge_mask_monotone(self, result):
        for k in range(2, result.max_k + 1):
            assert np.all(result.truss_edge_mask(k + 1) <= result.truss_edge_mask(k))

    def test_truss_subgraph_edge_counts(self, result):
        for k in range(2, result.max_k + 1):
            sub = result.truss_subgraph(k)
            assert sub.num_undirected_edges == int(
                np.count_nonzero(result.truss_edge_mask(k))
            )

    def test_summary_rows_shape(self, result):
        rows = result.summary_rows()
        assert rows[0]["k"] == 2
        assert rows[0]["truss_edges"] == result.num_edges
        assert rows[-1]["k"] == result.max_k
        peeled = sum(r["edges_peeled_at_k"] for r in rows)
        assert peeled == result.num_edges

    def test_summary_rows_standalone(self, result):
        rows = truss_summary_rows(result.edges, result.trussness)
        assert rows == result.summary_rows()

    def test_report_table_renders(self, result):
        from repro.analysis.report import truss_summary_table

        table = truss_summary_table(result.summary_rows(), title="truss")
        assert "truss_edges" in table and table.startswith("truss")
