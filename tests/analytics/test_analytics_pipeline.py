"""Integration tests for the one-call analytics pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PDTLConfig, PDTLRunner, run_analytics
from repro.analytics import canonical_edges, undirected_edge_supports
from repro.baselines.inmemory import forward_count
from repro.graph.csr import CSRGraph
from repro.graph.generators import rmat
from repro.graph.properties import clustering_coefficient, transitivity


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return CSRGraph.from_edgelist(rmat(7, edge_factor=8, seed=13))


@pytest.fixture(scope="module")
def result(graph):
    return run_analytics(
        graph,
        num_nodes=2,
        procs_per_node=2,
        memory_per_proc="64KB",
        scheduling="dynamic",
        modelled_cpu=True,
    )


class TestDerivations:
    def test_triangles_match_reference(self, graph, result):
        assert result.triangles == forward_count(graph)
        assert int(result.edge_supports.sum()) == 3 * result.triangles

    def test_edges_are_canonical(self, graph, result):
        np.testing.assert_array_equal(result.edges, canonical_edges(graph))

    def test_supports_match_direct_kernel(self, graph, result):
        np.testing.assert_array_equal(
            result.edge_supports, undirected_edge_supports(graph, result.edges)
        )

    def test_per_vertex_matches_separate_pdtl_run(self, graph, result):
        separate = PDTLRunner(PDTLConfig(), backend="serial").run(
            graph, sink_kind="per-vertex"
        )
        np.testing.assert_array_equal(
            result.per_vertex_counts, separate.per_vertex_counts
        )

    def test_clustering_and_transitivity(self, graph, result):
        np.testing.assert_allclose(
            result.clustering,
            clustering_coefficient(graph, result.per_vertex_counts),
        )
        assert result.transitivity == transitivity(graph, result.triangles)

    def test_truss_starts_from_pipeline_supports(self, result):
        np.testing.assert_array_equal(result.truss.support, result.edge_supports)
        assert result.max_truss_k == result.truss.max_k
        assert np.all(result.truss.trussness <= result.edge_supports + 2)


class TestDriver:
    def test_backends_agree(self, graph, result):
        threaded = run_analytics(
            graph,
            backend="threads",
            num_nodes=2,
            procs_per_node=2,
            memory_per_proc="64KB",
            scheduling="dynamic",
            modelled_cpu=True,
        )
        np.testing.assert_array_equal(
            threaded.edge_supports, result.edge_supports
        )
        np.testing.assert_array_equal(
            threaded.truss.trussness, result.truss.trussness
        )
        assert threaded.pdtl.calc_seconds == result.pdtl.calc_seconds

    def test_spilling_workers_match_dense_workers(self, graph, result):
        """With a tiny memory budget every chunk task's support sink spills
        sorted runs to scratch and merges them externally; the merged
        supports must equal the dense-path run bit for bit."""
        m = result.num_edges
        tiny = run_analytics(
            graph,
            num_nodes=2,
            procs_per_node=2,
            memory_per_proc=4096,  # dense support array is m*8 > 4096
            block_size=512,
            scheduling="dynamic",
            modelled_cpu=True,
        )
        assert m * 8 > 4096  # the budget really forces the spill path
        np.testing.assert_array_equal(tiny.edge_supports, result.edge_supports)
        np.testing.assert_array_equal(tiny.truss.trussness, result.truss.trussness)

    def test_accepts_on_disk_graph(self, graph, result, tmp_path):
        from repro.externalmem.blockio import BlockDevice
        from repro.graph.binfmt import write_graph

        device = BlockDevice(tmp_path, block_size=4096)
        on_disk = write_graph(device, "input", graph)
        disk_result = run_analytics(on_disk)
        np.testing.assert_array_equal(
            disk_result.edge_supports, result.edge_supports
        )

    def test_rejects_directed_graph(self, graph):
        from repro.core.orientation import orient_csr

        with pytest.raises(ValueError):
            run_analytics(orient_csr(graph))

    def test_config_and_overrides_are_exclusive(self, graph):
        with pytest.raises(ValueError):
            run_analytics(graph, config=PDTLConfig(), num_nodes=2)

    def test_report_renders_tables(self, result):
        text = result.report()
        assert "Triangle analytics" in text
        assert "k-truss decomposition" in text
        assert str(result.triangles) in text

    def test_summary_rows_metrics(self, result):
        rows = {row["metric"]: row["value"] for row in result.summary_rows()}
        assert rows["triangles"] == result.triangles
        assert rows["max truss k"] == result.max_truss_k
