"""GraphDelta: batch mutations with incremental truss maintenance.

Every test here holds the delta path to the oracle discipline: the
incrementally-maintained :class:`TrussResult` must equal a from-scratch
``truss_decomposition`` of the mutated graph exactly -- trussness,
supports, canonical edges and vertex universe -- on every backend and
kernel tier, with and without tracing, and under failure/straggler/jitter
injection (which may only perturb the engine's schedule, never the
analytics).
"""

import numpy as np
import pytest

from repro.analytics import GraphDelta, run_analytics, truss_decomposition
from repro.analytics.truss import canonical_edges
from repro.core import kernel_backend
from repro.core.shm import shm_available
from repro.core.triangles import EdgeSupportSink
from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import complete_graph, ring_graph, rmat

BACKENDS = (
    ("serial", "serial", False),
    ("threads", "threads", False),
    ("processes", "processes", False),
    ("processes+shm", "processes", True),
)

_SHM_OK, _SHM_REASON = shm_available()
_COMPILED_OK, _COMPILED_TIER = kernel_backend.compiled_available()


@pytest.fixture(scope="module")
def graph() -> CSRGraph:
    return CSRGraph.from_edgelist(rmat(7, edge_factor=8, seed=13))


@pytest.fixture(scope="module")
def base(graph):
    return truss_decomposition(graph, keep_triangles=True)


def _oracle_check(applied):
    """Pin the applied result to the from-scratch decomposition."""
    oracle = truss_decomposition(applied.graph)
    assert applied.graph.num_vertices == oracle.num_vertices
    assert np.array_equal(applied.truss.edges, oracle.edges)
    assert np.array_equal(applied.truss.support, oracle.support)
    assert np.array_equal(applied.truss.trussness, oracle.trussness)
    return oracle


def _some_edges(graph, count, seed):
    edges = canonical_edges(graph)
    rng = np.random.default_rng(seed)
    return edges[rng.choice(edges.shape[0], size=count, replace=False)]


def _absent_edges(graph, count, seed):
    n = graph.num_vertices
    present = set(map(tuple, canonical_edges(graph).tolist()))
    rng = np.random.default_rng(seed)
    out = []
    while len(out) < count:
        u, v = sorted(rng.integers(0, n, size=2).tolist())
        if u != v and (u, v) not in present:
            present.add((u, v))
            out.append((u, v))
    return np.array(out, dtype=np.int64)


# -- API semantics ---------------------------------------------------------


class TestGraphDeltaAPI:
    def test_chainable_and_counted(self):
        delta = GraphDelta().insert_edges([(0, 1)]).delete_edges([(2, 3), (4, 5)])
        assert delta.num_insertions == 1
        assert delta.num_deletions == 2

    def test_constructor_batches(self):
        delta = GraphDelta(insertions=[(0, 1)], deletions=[(1, 2)])
        assert delta.num_insertions == 1
        assert delta.num_deletions == 1

    def test_reusable(self, graph, base):
        delta = GraphDelta(deletions=_some_edges(graph, 4, seed=0))
        first = delta.apply(graph, prev=base, verify=True)
        second = delta.apply(graph, prev=base, verify=True)
        assert np.array_equal(first.truss.trussness, second.truss.trussness)
        assert np.array_equal(first.deleted, second.deleted)

    def test_directed_graph_rejected(self):
        directed = CSRGraph.from_edgelist(
            EdgeList(np.array([[0, 1]], dtype=np.int64), 2), directed=True
        )
        with pytest.raises(ValueError, match="undirected"):
            GraphDelta(insertions=[(0, 1)]).apply(directed)

    def test_self_loop_rejected(self, graph):
        with pytest.raises(ValueError, match="self-loop"):
            GraphDelta(insertions=[(3, 3)]).apply(graph)

    def test_out_of_range_rejected(self, graph):
        n = graph.num_vertices
        with pytest.raises(ValueError, match="vertex universe"):
            GraphDelta(deletions=[(0, n)]).apply(graph)

    def test_prev_universe_mismatch_rejected(self, graph, base):
        other = CSRGraph.from_edgelist(ring_graph(graph.num_vertices + 1))
        with pytest.raises(ValueError, match="vertex universe"):
            GraphDelta(insertions=[(0, 2)]).apply(other, prev=base)

    def test_supports_length_mismatch_rejected(self, graph, base):
        bad = np.zeros(base.support.shape[0] + 1, dtype=np.int64)
        with pytest.raises(ValueError, match="supports"):
            GraphDelta(insertions=[(0, 2)]).apply(graph, prev=base, supports=bad)

    def test_spilled_sink_rejected(self, graph, base, tmp_path):
        from repro.core import kernels
        from repro.externalmem.blockio import BlockDevice

        device = BlockDevice(tmp_path, block_size=512)
        keys = kernels.packed_keys(
            base.edges[:, 0], base.edges[:, 1], graph.num_vertices
        )
        sink = EdgeSupportSink(
            keys,
            graph.num_vertices,
            spill_file=device.open("s.run"),
            memory_budget_bytes=64,
        )
        assert sink.spilling
        with pytest.raises(ValueError, match="dense"):
            GraphDelta(deletions=[(0, 1)]).apply(graph, prev=base, supports=sink)


# -- oracle equality -------------------------------------------------------


class TestDeltaOracle:
    def test_mixed_batch(self, graph, base):
        delta = GraphDelta(
            insertions=_absent_edges(graph, 6, seed=1),
            deletions=_some_edges(graph, 6, seed=2),
        )
        applied = delta.apply(graph, prev=base, verify=True)
        oracle = _oracle_check(applied)
        assert applied.truss.max_k == oracle.max_k

    def test_noop_batch_replays_nothing(self, graph, base):
        absent = _absent_edges(graph, 3, seed=3)
        delta = GraphDelta(deletions=absent, insertions=canonical_edges(graph)[:3])
        applied = delta.apply(graph, prev=base, verify=True)
        assert applied.inserted.shape == (0, 2)
        assert applied.deleted.shape == (0, 2)
        assert applied.touched_edges == 0
        assert applied.replayed_levels == 0
        assert np.array_equal(applied.truss.trussness, base.trussness)

    def test_insert_and_delete_same_edge_survives(self, graph, base):
        absent = _absent_edges(graph, 1, seed=4)
        delta = GraphDelta(insertions=absent, deletions=absent)
        applied = delta.apply(graph, prev=base, verify=True)
        assert np.array_equal(applied.inserted, absent)
        assert applied.deleted.shape == (0, 2)

    def test_self_inverse_round_trip(self, graph, base):
        edges = _some_edges(graph, 8, seed=5)
        removed = GraphDelta(deletions=edges).apply(graph, prev=base, verify=True)
        restored = GraphDelta(insertions=edges).apply(
            removed.graph, prev=removed.truss, supports=removed.sink, verify=True
        )
        assert np.array_equal(restored.truss.edges, base.edges)
        assert np.array_equal(restored.truss.trussness, base.trussness)
        assert np.array_equal(restored.truss.support, base.support)

    def test_delete_all_edges(self, base):
        small = CSRGraph.from_edgelist(complete_graph(6))
        prev = truss_decomposition(small, keep_triangles=True)
        applied = GraphDelta(deletions=canonical_edges(small)).apply(
            small, prev=prev, verify=True
        )
        assert applied.graph.num_vertices == 6
        assert applied.truss.edges.shape == (0, 2)
        assert applied.truss.max_k == 0

    def test_insert_into_empty_graph(self):
        empty = CSRGraph.from_edgelist(EdgeList(np.empty((0, 2), dtype=np.int64), 5))
        prev = truss_decomposition(empty, keep_triangles=True)
        applied = GraphDelta(insertions=canonical_edges(
            CSRGraph.from_edgelist(complete_graph(5))
        )).apply(empty, prev=prev, verify=True)
        assert applied.graph.num_vertices == 5
        assert applied.truss.max_k == 5 - 2 + 2  # K5 is a 5-truss
        _oracle_check(applied)

    def test_without_prev_is_cold_but_correct(self, graph):
        delta = GraphDelta(deletions=_some_edges(graph, 5, seed=6))
        applied = delta.apply(graph, verify=True)
        _oracle_check(applied)

    def test_without_retained_triangles_slow_path(self, graph):
        prev = truss_decomposition(graph)  # no tri_edges retained
        assert prev.tri_edges is None
        delta = GraphDelta(deletions=_some_edges(graph, 5, seed=7))
        applied = delta.apply(graph, prev=prev, verify=True)
        _oracle_check(applied)

    def test_chained_batches(self, graph, base):
        state_graph, state_truss, state_sink = graph, base, None
        for seed in range(3):
            delta = GraphDelta(
                insertions=_absent_edges(state_graph, 4, seed=10 + seed),
                deletions=_some_edges(state_graph, 4, seed=20 + seed),
            )
            applied = delta.apply(
                state_graph, prev=state_truss, supports=state_sink, verify=True
            )
            state_graph, state_truss, state_sink = (
                applied.graph,
                applied.truss,
                applied.sink,
            )
        _oracle_check(applied)

    def test_truncated_replay_skips_high_levels(self, base):
        # a deep core (K12) with a pendant triangle: deleting only pendant
        # edges must not replay the core's high peel levels
        core = canonical_edges(CSRGraph.from_edgelist(complete_graph(12)))
        pendant = np.array([[0, 12], [1, 12], [12, 13]], dtype=np.int64)
        graph = CSRGraph.from_edgelist(
            EdgeList(np.concatenate([core, pendant]), 14)
        )
        prev = truss_decomposition(graph, keep_triangles=True)
        applied = GraphDelta(deletions=[(12, 13)]).apply(
            graph, prev=prev, verify=True
        )
        _oracle_check(applied)
        # full peel reaches k = 12; the pendant edges live at low levels
        assert prev.max_k == 12
        assert applied.replayed_levels < 12 - 2


# -- kernel tiers ----------------------------------------------------------


class TestDeltaKernelTiers:
    def test_numpy_tier_matches_active(self, graph, base):
        delta = GraphDelta(
            insertions=_absent_edges(graph, 5, seed=8),
            deletions=_some_edges(graph, 5, seed=9),
        )
        active = delta.apply(graph, prev=base, verify=True)
        with kernel_backend.use("numpy"):
            numpy_tier = delta.apply(graph, prev=base, verify=True)
        assert np.array_equal(active.truss.trussness, numpy_tier.truss.trussness)
        assert np.array_equal(active.truss.support, numpy_tier.truss.support)
        assert active.replayed_levels == numpy_tier.replayed_levels

    @pytest.mark.skipif(not _COMPILED_OK, reason="no compiled kernel tier")
    def test_compiled_tier_matches_numpy(self, graph, base):
        delta = GraphDelta(
            insertions=_absent_edges(graph, 5, seed=8),
            deletions=_some_edges(graph, 5, seed=9),
        )
        with kernel_backend.use(_COMPILED_TIER):
            compiled = delta.apply(graph, prev=base, verify=True)
        with kernel_backend.use("numpy"):
            numpy_tier = delta.apply(graph, prev=base, verify=True)
        assert np.array_equal(compiled.truss.trussness, numpy_tier.truss.trussness)
        assert np.array_equal(compiled.truss.support, numpy_tier.truss.support)


# -- telemetry -------------------------------------------------------------


class TestDeltaTelemetry:
    def test_trace_is_purely_observational(self, graph, base):
        from repro.obs.export import RunTelemetry

        delta = GraphDelta(
            insertions=_absent_edges(graph, 4, seed=11),
            deletions=_some_edges(graph, 4, seed=12),
        )
        telemetry = RunTelemetry(
            backend="serial", scheduling="static", num_workers=1, procs_per_node=1
        )
        traced = delta.apply(graph, prev=base, telemetry=telemetry, verify=True)
        untraced = delta.apply(graph, prev=base, verify=True)
        assert np.array_equal(traced.truss.trussness, untraced.truss.trussness)
        assert np.array_equal(traced.truss.support, untraced.truss.support)
        assert traced.touched_edges == untraced.touched_edges
        assert traced.replayed_levels == untraced.replayed_levels

        names = [event.name for event in telemetry.events]
        assert names == ["delta_normalise", "delta_support_merge", "delta_replay"]
        assert telemetry.counters["delta.batches"] == 1
        assert telemetry.counters["delta.touched_edges"] == traced.touched_edges
        assert telemetry.counters["delta.replayed_levels"] == traced.replayed_levels

    def test_counters_accumulate_across_batches(self, graph, base):
        from repro.obs.export import RunTelemetry

        telemetry = RunTelemetry(
            backend="serial", scheduling="static", num_workers=1, procs_per_node=1
        )
        delta = GraphDelta(deletions=_some_edges(graph, 3, seed=13))
        first = delta.apply(graph, prev=base, telemetry=telemetry)
        second = GraphDelta(insertions=first.deleted).apply(
            first.graph, prev=first.truss, supports=first.sink, telemetry=telemetry
        )
        assert telemetry.counters["delta.batches"] == 2
        assert telemetry.counters["delta.touched_edges"] == (
            first.touched_edges + second.touched_edges
        )


# -- pipeline integration --------------------------------------------------


class TestPipelineDeltas:
    @pytest.mark.parametrize(
        "label,backend,shm",
        BACKENDS,
        ids=[label for label, _, _ in BACKENDS],
    )
    def test_backend_equivalence_vs_fresh_run(self, graph, label, backend, shm):
        if shm and not _SHM_OK:
            pytest.skip(_SHM_REASON)
        delta = GraphDelta(
            insertions=_absent_edges(graph, 6, seed=14),
            deletions=_some_edges(graph, 6, seed=15),
        )
        result = run_analytics(
            graph,
            backend=backend,
            num_nodes=2,
            procs_per_node=2,
            memory_per_proc="64KB",
            scheduling="dynamic",
            modelled_cpu=True,
            shm=shm,
            deltas=delta,
        )
        assert result.deltas_applied == 1
        mutated = delta.apply(graph).graph
        fresh = run_analytics(
            mutated,
            num_nodes=2,
            procs_per_node=2,
            memory_per_proc="64KB",
            modelled_cpu=True,
        )
        assert result.triangles == fresh.triangles
        assert np.array_equal(result.edges, fresh.edges)
        assert np.array_equal(result.edge_supports, fresh.edge_supports)
        assert np.array_equal(result.truss.trussness, fresh.truss.trussness)
        assert np.array_equal(result.per_vertex_counts, fresh.per_vertex_counts)
        assert result.transitivity == fresh.transitivity
        assert np.array_equal(result.clustering, fresh.clustering)

    def test_injection_does_not_perturb_deltas(self, graph):
        delta = GraphDelta(deletions=_some_edges(graph, 5, seed=16))
        clean = run_analytics(
            graph,
            backend="serial",
            num_nodes=2,
            procs_per_node=2,
            memory_per_proc="64KB",
            scheduling="dynamic",
            modelled_cpu=True,
            deltas=delta,
        )
        injected = run_analytics(
            graph,
            backend="threads",
            num_nodes=2,
            procs_per_node=2,
            memory_per_proc="64KB",
            scheduling="dynamic",
            modelled_cpu=True,
            failure_spec={0: 1, 2: 0},
            host_jitter_seconds=0.01,
            deltas=delta,
        )
        assert clean.triangles == injected.triangles
        assert np.array_equal(clean.truss.trussness, injected.truss.trussness)
        assert np.array_equal(clean.edge_supports, injected.edge_supports)

    def test_delta_sequence_and_traced_report(self, graph):
        first = GraphDelta(deletions=_some_edges(graph, 4, seed=17))
        second = GraphDelta(insertions=_absent_edges(graph, 4, seed=18))
        result = run_analytics(
            graph,
            num_nodes=2,
            procs_per_node=2,
            memory_per_proc="64KB",
            modelled_cpu=True,
            trace=True,
            deltas=[first, second],
        )
        assert result.deltas_applied == 2
        telemetry = result.pdtl.telemetry
        assert telemetry is not None
        assert telemetry.counters["delta.batches"] == 2
        assert any(event.cat == "delta" for event in telemetry.events)
        report = result.report()
        assert "delta.batches" in report

        untraced = run_analytics(
            graph,
            num_nodes=2,
            procs_per_node=2,
            memory_per_proc="64KB",
            modelled_cpu=True,
            deltas=[first, second],
        )
        assert np.array_equal(
            result.truss.trussness, untraced.truss.trussness
        )
        assert result.triangles == untraced.triangles
