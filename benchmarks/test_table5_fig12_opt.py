"""Table V / Figure 12 -- PDTL vs OPT (setup and calculation, varying cores).

The paper measures the two systems' setup phases (orientation vs database
creation) and calculation phases separately on the local multicore
machines, finding PDTL's setup up to 75x faster and its calculation up to
2x faster, with the gap persisting at every core count (Figure 12).

Here both phases are measured for both systems across the core sweep, plus
the deterministic structural quantity behind the setup gap: the bytes each
system's preprocessing writes to disk.
"""

from __future__ import annotations

import tempfile

from _bench_utils import write_result

from repro.analysis.report import format_seconds_cell, format_table
from repro.baselines.opt import run_opt
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner

_DATASETS = ("livejournal", "orkut", "twitter", "yahoo", "rmat-10")
_CORE_SWEEP = (1, 4, 8)


def test_table5_pdtl_vs_opt(benchmark, datasets, reference_counts, results_dir):
    def sweep():
        rows = []
        for name in _DATASETS:
            graph = datasets[name]
            config = PDTLConfig(num_nodes=1, procs_per_node=8, memory_per_proc="2MB")
            pdtl = PDTLRunner(config).run(graph)
            opt = run_opt(graph, num_threads=8)
            assert pdtl.triangles == reference_counts[name]
            assert opt.triangles == reference_counts[name]
            oriented_bytes = 8 * (graph.num_vertices + graph.num_undirected_edges)
            rows.append(
                {
                    "Graph": name,
                    "PDTL orientation": format_seconds_cell(pdtl.orientation_seconds),
                    "PDTL calc": format_seconds_cell(pdtl.calc_seconds),
                    "OPT database": format_seconds_cell(opt.database_seconds),
                    "OPT calc": format_seconds_cell(opt.calc_seconds),
                    "PDTL setup bytes": oriented_bytes,
                    "OPT setup bytes": opt.database_bytes,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "table5_pdtl_vs_opt",
        format_table(rows, title="Table V: PDTL vs OPT (8 cores)"),
    )
    # structural shape behind the setup gap: OPT's database re-encodes the
    # whole bidirectional graph plus indexes, PDTL only writes the oriented
    # half of it
    for row in rows:
        assert row["OPT setup bytes"] > row["PDTL setup bytes"]


def test_fig12_pdtl_vs_opt_across_cores(benchmark, datasets, reference_counts, results_dir):
    name = "rmat-12"  # the paper's Figure 12 uses RMAT-26

    def sweep():
        graph = datasets[name]
        rows = []
        for cores in _CORE_SWEEP:
            config = PDTLConfig(num_nodes=1, procs_per_node=cores, memory_per_proc="2MB")
            pdtl = PDTLRunner(config).run(graph)
            opt = run_opt(graph, num_threads=cores)
            assert pdtl.triangles == reference_counts[name]
            assert opt.triangles == reference_counts[name]
            rows.append(
                {
                    "Cores": cores,
                    "PDTL setup": format_seconds_cell(pdtl.orientation_seconds),
                    "PDTL calc": format_seconds_cell(pdtl.calc_seconds),
                    "OPT setup": format_seconds_cell(opt.database_seconds),
                    "OPT calc": format_seconds_cell(opt.calc_seconds),
                    "_pdtl_setup": pdtl.orientation_seconds,
                    "_opt_setup": opt.database_seconds,
                    "_pdtl_total": pdtl.orientation_seconds + pdtl.calc_seconds,
                    "_opt_total": opt.total_seconds,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig12_pdtl_vs_opt_cores",
        format_table(
            rows,
            columns=["Cores", "PDTL setup", "PDTL calc", "OPT setup", "OPT calc"],
            title=f"Figure 12: PDTL vs OPT on {name} across cores",
        ),
    )
    # The paper's robust ordering: PDTL's setup (orientation) beats OPT's
    # database creation at every core count -- orientation filters and
    # writes half the graph while OPT lexsorts, relabels and re-encodes all
    # of it.  Since both calculation phases now run on the same vectorised
    # intersection kernels, the *total* ordering of Figure 12 needs the
    # multicore parallelism to overcome MGT's external-memory windowing:
    # it is asserted for cores > 1.  At a single core on these scaled-down
    # analogues the windowing overhead can exceed OPT's flat in-memory
    # scan, so the guard there is a tolerance band only -- PDTL's total may
    # trail OPT's by at most 2x (any worse indicates an MGT regression, not
    # the simulation's known single-core handicap).
    for row in rows:
        assert row["_pdtl_setup"] < row["_opt_setup"]
        if row["Cores"] > 1:
            assert row["_pdtl_total"] < row["_opt_total"]
        else:
            assert row["_pdtl_total"] < 2.0 * row["_opt_total"]
