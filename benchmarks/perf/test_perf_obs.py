"""Tracer overhead: traced vs untraced wall clock on a full PDTL run.

The ``obs_overhead`` section of ``BENCH_pdtl.json`` tracks
``traced_overhead_pct`` -- the wall-clock cost of
``PDTLConfig(trace=True)`` on the processes+shm backend (the production
configuration).  The acceptance target is **under 2%**: the tracer only
appends plain span records to per-context buffers and harvests counter
snapshots once per chunk, all outside the accounted region.  (The cost of
tracing being merely *available* -- the ``NULL_TRACER`` path the untraced
run takes -- is by construction a single attribute check per span site and
is not separately measurable at these run times.)

Both runs are asserted bit-identical in every modelled quantity first --
an overhead number for a run that changed the answer is meaningless.  The
traced run's Chrome trace is written to ``benchmarks/results/`` so CI can
upload it as an artifact.

Quick mode (``PDTL_PERF_QUICK=1``) uses the smaller graph and a single
repetition and skips the 2% assertion, like the other perf benchmarks.
"""

from __future__ import annotations

import json
import time

import pytest

from conftest import QUICK, REPEATS
from _bench_utils import RESULTS_DIR

from repro.baselines.inmemory import forward_count
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner
from repro.core.shm import shm_available
from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_degree_graph

_MEMORY = 16 * 1024
_BLOCK = 4096
#: tracked acceptance target, asserted only in full mode
TRACE_MAX_OVERHEAD_PCT = 2.0
#: overhead repeats: the signal is a small wall-clock delta, so the traced
#: and untraced runs are *interleaved* (pairs share the same machine noise
#: regime) and each side takes the best of more repetitions than the
#: throughput benchmarks use
OVERHEAD_REPEATS = 1 if QUICK else max(REPEATS, 5)

_SHM_OK, _SHM_REASON = shm_available()


@pytest.fixture(scope="module")
def overhead_graph() -> CSRGraph:
    # larger than the throughput workloads: the overhead is a percentage,
    # so the run must be long enough that pool noise stays below the budget
    n = 12000 if QUICK else 160000
    return CSRGraph.from_edgelist(
        power_law_degree_graph(n, exponent=2.3, min_degree=2, max_degree=60, seed=7)
    )


def _config(trace: bool) -> PDTLConfig:
    return PDTLConfig(
        num_nodes=1,
        procs_per_node=4,
        memory_per_proc=_MEMORY,
        block_size=_BLOCK,
        modelled_cpu=True,
        scheduling="dynamic",
        shm=True,
        trace=trace,
        kernel_backend="numpy",
    )


def _timed_run(graph, trace: bool):
    start = time.perf_counter()
    result = PDTLRunner(_config(trace), backend="processes").run(graph)
    return time.perf_counter() - start, result


@pytest.mark.skipif(not _SHM_OK, reason=f"shared memory unavailable: {_SHM_REASON}")
def test_tracer_overhead(overhead_graph, perf_report):
    expected = forward_count(overhead_graph)

    # warm the pool and page cache outside the timed region
    _timed_run(overhead_graph, trace=False)

    untraced_walls: list[float] = []
    traced_wall = float("inf")
    untraced = traced = None
    # best-of over interleaved pairs; when a round still lands over budget
    # the loop keeps sampling (bounded) -- the minimum converges on the
    # true wall while a single loaded-machine round does not
    max_rounds = 1 if QUICK else 3 * OVERHEAD_REPEATS
    for attempt in range(max_rounds):
        wall, untraced = _timed_run(overhead_graph, trace=False)
        untraced_walls.append(wall)
        wall, traced = _timed_run(overhead_graph, trace=True)
        traced_wall = min(traced_wall, wall)
        if (
            attempt >= OVERHEAD_REPEATS - 1
            and traced_wall < min(untraced_walls) * (1 + TRACE_MAX_OVERHEAD_PCT / 100)
        ):
            break
    untraced_wall = min(untraced_walls)
    # the untraced samples' own spread is the machine's run-to-run noise on
    # this exact workload; the budget assertion below tolerates it so a
    # loaded host cannot fail a sub-noise overhead spuriously
    noise_s = max(untraced_walls) - untraced_wall

    # bit-identity first: tracing observes, never participates
    assert traced.triangles == untraced.triangles == expected
    assert traced.calc_seconds == untraced.calc_seconds
    assert traced.total_io_seconds == untraced.total_io_seconds
    assert traced.total_cpu_seconds == untraced.total_cpu_seconds
    assert untraced.telemetry is None
    telemetry = traced.telemetry
    assert telemetry is not None
    assert telemetry.events

    trace_path = telemetry.write_chrome_trace(
        RESULTS_DIR / "trace_processes_shm_wall.json", variant="wall"
    )
    telemetry.write_chrome_trace(
        RESULTS_DIR / "trace_processes_shm_modelled.json", variant="modelled"
    )
    assert json.loads(trace_path.read_text())["traceEvents"]

    overhead_pct = (traced_wall / untraced_wall - 1.0) * 100.0
    perf_report.record(
        "obs_overhead",
        graph_vertices=overhead_graph.num_vertices,
        graph_edges=overhead_graph.num_undirected_edges,
        num_chunks=traced.num_chunks,
        trace_events=len(telemetry.events),
        trace_counters=len(telemetry.counters),
        untraced_wall_s=untraced_wall,
        traced_wall_s=traced_wall,
        untraced_noise_s=noise_s,
        traced_overhead_pct=overhead_pct,
    )
    if not QUICK:
        budget_s = untraced_wall * TRACE_MAX_OVERHEAD_PCT / 100.0
        assert traced_wall - untraced_wall < budget_s + noise_s, (
            f"tracer overhead {overhead_pct:.2f}% exceeds the "
            f"{TRACE_MAX_OVERHEAD_PCT}% budget (untraced {untraced_wall:.4f}s, "
            f"traced {traced_wall:.4f}s, measured noise {noise_s:.4f}s)"
        )
