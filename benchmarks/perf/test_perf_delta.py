"""Dynamic-graph perf: incremental GraphDelta vs a full truss recompute.

The tracked quantity is the ``delta_vs_recompute`` entry of
``BENCH_pdtl.json``: on the shared power-law perf workload, applying a
small deletion batch through the incremental maintenance path --
touched-edge support deltas merged into the retained sink state plus the
local trussness fixpoint over the affected cascade -- against a full
from-scratch ``truss_decomposition`` of the mutated graph.  A mixed
insert+delete batch (the truncated-replay path) is timed alongside for
the record, without a floor: replay re-peels the low levels, so its win
over recompute is the skipped triangle enumeration only.

Exact equality is asserted in every mode before any time is reported:
the delta result's trussness and supports must match the full recompute
bit for bit (the oracle discipline of ``tests/analytics/test_delta.py``
and the property suite).  The ``>= DELTA_MIN_SPEEDUP`` floor is asserted
only in full (non-quick) runs, like the other perf thresholds.
"""

from __future__ import annotations

import numpy as np

from conftest import DELTA_MIN_SPEEDUP, QUICK, best_of

from repro.analytics import GraphDelta, truss_decomposition
from repro.analytics.truss import canonical_edges

#: a "small batch" -- the service-style workload the ROADMAP names: a few
#: edges change between queries while the graph stays ~100k edges
BATCH_EDGES = 8


def _deletion_batch(graph) -> GraphDelta:
    edges = canonical_edges(graph)
    rng = np.random.default_rng(11)
    return GraphDelta(
        deletions=edges[rng.choice(edges.shape[0], size=BATCH_EDGES, replace=False)]
    )


def _mixed_batch(graph) -> GraphDelta:
    edges = canonical_edges(graph)
    n = graph.num_vertices
    rng = np.random.default_rng(12)
    dels = edges[rng.choice(edges.shape[0], size=BATCH_EDGES, replace=False)]
    present = set(map(tuple, edges.tolist()))
    ins = []
    while len(ins) < BATCH_EDGES:
        u, v = sorted(rng.integers(0, n, size=2).tolist())
        if u != v and (u, v) not in present:
            present.add((u, v))
            ins.append((u, v))
    return GraphDelta(insertions=np.array(ins, dtype=np.int64), deletions=dels)


def _oracle_gate(applied):
    oracle = truss_decomposition(applied.graph)
    np.testing.assert_array_equal(applied.truss.trussness, oracle.trussness)
    np.testing.assert_array_equal(applied.truss.support, oracle.support)
    np.testing.assert_array_equal(applied.truss.edges, oracle.edges)


def test_perf_delta(perf_graph, perf_report):
    delta = _deletion_batch(perf_graph)
    mixed = _mixed_batch(perf_graph)
    prev = truss_decomposition(perf_graph, keep_triangles=True)

    # -- correctness gate: oracle equality before any timing ---------------
    _oracle_gate(delta.apply(perf_graph, prev=prev))
    _oracle_gate(mixed.apply(perf_graph, prev=prev))

    delta_seconds, applied = best_of(lambda: delta.apply(perf_graph, prev=prev))
    recompute_seconds, _ = best_of(lambda: truss_decomposition(applied.graph))
    mixed_seconds, _ = best_of(lambda: mixed.apply(perf_graph, prev=prev))

    speedup = recompute_seconds / delta_seconds if delta_seconds else float("inf")
    perf_report.record(
        "delta_vs_recompute",
        batch_deletions=int(applied.deleted.shape[0]),
        touched_edges=applied.touched_edges,
        cascade_rounds=applied.replayed_levels,
        max_truss_k=applied.truss.max_k,
        full_recompute_s=recompute_seconds,
        delta_apply_s=delta_seconds,
        delta_speedup=speedup,
        mixed_batch_apply_s=mixed_seconds,
    )
    if not QUICK:
        assert speedup >= DELTA_MIN_SPEEDUP, (
            f"incremental delta speedup {speedup:.2f}x over the full truss "
            f"recompute is below the {DELTA_MIN_SPEEDUP}x floor"
        )
