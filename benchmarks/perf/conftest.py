"""Fixtures and result plumbing for the perf microbenchmark harness.

The harness times the vectorised hot paths against the retained pre-PR
reference implementations on a ~100k-edge power-law graph and persists the
numbers twice:

* ``BENCH_pdtl.json`` at the repo root -- machine-readable, uploaded as a
  CI artifact so future PRs inherit a perf trajectory;
* ``benchmarks/results/perf_vectorization.txt`` -- the human-readable
  before/after table.

Set ``PDTL_PERF_QUICK=1`` (the CI perf-smoke job does) to run on a ~25k
edge graph with a single timing repetition and **without** the speedup
threshold assertions -- correctness (vectorised counts == serial
reference) is always asserted, so the smoke job still fails on any count
divergence.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))
from _bench_utils import RESULTS_DIR, write_result  # noqa: E402

from repro.graph.csr import CSRGraph  # noqa: E402
from repro.graph.generators import power_law_degree_graph  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_JSON = REPO_ROOT / "BENCH_pdtl.json"

QUICK = bool(os.environ.get("PDTL_PERF_QUICK"))
#: timing repetitions (min is reported); 1 in quick mode
REPEATS = 1 if QUICK else 3
#: acceptance thresholds, asserted only in full mode
EXTSORT_MIN_SPEEDUP = 10.0
BASELINE_MIN_SPEEDUP = 5.0
#: processes+shm over the plain processes backend (test_perf_backends)
BACKEND_SHM_MIN_SPEEDUP = 1.5
#: parallel preprocessing (pool orientation + pool run formation) over the
#: serial master path (test_perf_preprocess)
PREPROCESS_MIN_SPEEDUP = 1.5
#: vectorised k-truss peeler over the scalar reference (test_perf_analytics)
TRUSS_MIN_SPEEDUP = 5.0
#: compiled kernel tier over the numpy tier, both mgt_counting and
#: analytics_truss (test_perf_compiled); the tracked target is >=3x
COMPILED_MIN_SPEEDUP = 2.0
#: incremental GraphDelta.apply on a small batch over a full from-scratch
#: truss recompute (test_perf_delta)
DELTA_MIN_SPEEDUP = 5.0


@pytest.fixture(autouse=True)
def numpy_kernel_tier():
    """Pin the numpy kernel tier for every perf benchmark.

    The historical entries of ``BENCH_pdtl.json`` (extsort, baselines,
    backends, truss, preprocess) measure the *vectorised numpy* paths
    against their pre-PR references and floors; letting the auto-detected
    compiled tier leak in would silently change what those numbers mean
    (and shift relative floors like the shm-vs-processes ratio).  The
    compiled-tier comparison has its own explicit benchmark
    (``test_perf_compiled.py``), which switches tiers per measurement with
    ``kernel_backend.use``.
    """
    from repro.core import kernel_backend

    with kernel_backend.use("numpy"):
        yield


def best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


@pytest.fixture(scope="session")
def perf_graph() -> CSRGraph:
    """The microbench workload: a power-law graph with ~100k (quick: ~25k)
    undirected edges and pronounced hubs."""
    n = 3500 if QUICK else 13000
    return CSRGraph.from_edgelist(
        power_law_degree_graph(n, exponent=2.1, min_degree=4, max_degree=300, seed=7)
    )


class _PerfReport:
    """Accumulates benchmark entries and writes both output files."""

    def __init__(self) -> None:
        self.entries: dict[str, dict] = {}
        self.graph_info: dict = {}

    def record(self, name: str, **fields) -> None:
        self.entries[name] = {
            key: (round(val, 6) if isinstance(val, float) else val)
            for key, val in fields.items()
        }

    def flush(self) -> None:
        if not self.entries:
            return
        entries = self.entries
        # a partial run (one benchmark file selected) must not erase the
        # other tracked entries: merge into an existing payload from the
        # same mode (quick vs full numbers never mix)
        if BENCH_JSON.exists():
            try:
                previous = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                previous = None
            if (
                isinstance(previous, dict)
                and previous.get("quick") == QUICK
                and previous.get("graph") == self.graph_info
            ):
                entries = {**previous.get("benchmarks", {}), **entries}
        payload = {
            "schema": 1,
            "quick": QUICK,
            "python": platform.python_version(),
            "graph": self.graph_info,
            "benchmarks": entries,
        }
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        lines = [
            "Perf microbenchmarks -- vectorised hot paths vs pre-PR references",
            f"(graph: {self.graph_info}, quick={QUICK})",
            "",
        ]
        for name, fields in entries.items():
            lines.append(f"[{name}]")
            for key, val in fields.items():
                lines.append(f"  {key:<24} {val}")
            lines.append("")
        write_result(RESULTS_DIR, "perf_vectorization", "\n".join(lines))


@pytest.fixture(scope="session")
def perf_report(perf_graph) -> _PerfReport:
    report = _PerfReport()
    report.graph_info = {
        "kind": "power_law",
        "num_vertices": perf_graph.num_vertices,
        "num_edges": perf_graph.num_undirected_edges,
        "max_degree": perf_graph.max_degree,
    }
    yield report
    report.flush()
