"""Analytics perf: vectorised k-truss peeling vs the scalar reference.

The tracked quantity is the ``analytics_truss`` entry of
``BENCH_pdtl.json``: on the shared power-law perf workload, the
vectorised truss decomposition (triangle enumeration through the shared
MGT counting kernel + incidence-CSR batch peeling, no per-edge Python
loops) against the pinned scalar reference implementation
(:func:`repro.analytics.truss.trussness_reference`).

Exact equality of the trussness arrays is asserted in every mode -- the
decomposition is a pure function of the graph, so the two implementations
must agree bit for bit before any time is reported.  The
``>= TRUSS_MIN_SPEEDUP`` floor is asserted only in full (non-quick) runs,
like the other perf thresholds.

The end-to-end ``run_analytics`` driver (one PDTL edge-support run fanned
into supports, per-vertex counts, clustering, transitivity and trussness)
is also timed and its derivations cross-checked against the in-memory
baseline count.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import QUICK, REPEATS, TRUSS_MIN_SPEEDUP, best_of

from repro.analytics import run_analytics, truss_decomposition, trussness_reference
from repro.baselines.inmemory import forward_count


@pytest.fixture(scope="module")
def expected_triangles(perf_graph) -> int:
    return forward_count(perf_graph)


def test_analytics_truss(perf_graph, expected_triangles, perf_report):
    # -- correctness gate: exact equality before any timing ----------------
    reference = trussness_reference(perf_graph)
    vec_seconds, result = best_of(lambda: truss_decomposition(perf_graph))
    np.testing.assert_array_equal(result.trussness, reference)
    assert int(result.support.sum()) == 3 * expected_triangles

    ref_seconds, _ = best_of(
        lambda: trussness_reference(perf_graph), repeats=1 if QUICK else REPEATS
    )

    # -- end-to-end driver: one PDTL run fanned into every metric ----------
    analytics_seconds, analytics = best_of(
        lambda: run_analytics(
            perf_graph,
            procs_per_node=4,
            memory_per_proc="4MB",
            scheduling="dynamic",
            modelled_cpu=True,
            backend="threads",
        ),
        repeats=1,
    )
    assert analytics.triangles == expected_triangles
    np.testing.assert_array_equal(analytics.truss.trussness, reference)
    np.testing.assert_array_equal(analytics.edge_supports, result.support)

    speedup = ref_seconds / vec_seconds if vec_seconds else float("inf")
    perf_report.record(
        "analytics_truss",
        graph_vertices=perf_graph.num_vertices,
        graph_edges=perf_graph.num_undirected_edges,
        triangles=int(expected_triangles),
        max_truss_k=result.max_k,
        peel_rounds=result.rounds,
        truss_reference_s=ref_seconds,
        truss_vectorized_s=vec_seconds,
        truss_speedup=speedup,
        truss_edges_per_s=perf_graph.num_undirected_edges / vec_seconds,
        analytics_end_to_end_s=analytics_seconds,
    )
    if not QUICK:
        assert speedup >= TRUSS_MIN_SPEEDUP, (
            f"vectorised truss peeling speedup {speedup:.2f}x over the scalar "
            f"reference is below the {TRUSS_MIN_SPEEDUP}x floor"
        )
