"""Compiled kernel tier vs the numpy tier, tracked in ``BENCH_pdtl.json``.

Two benchmarks on the tracked power-law workload, each timing the *same*
code path under both kernel tiers (``kernel_backend.use``):

* **mgt counting** -- single-core MGT throughput over the on-disk graph,
  the fused block scan (gather -> membership -> count in one loop) vs the
  3-pass numpy chain it replaces;
* **analytics truss** -- ``truss_decomposition``, the fused per-level
  peel (frontier scan + triangle kill + support decrement in one loop) vs
  the batched numpy peeler.

Warm-JIT hygiene: the compiled tier is activated and explicitly warmed
(``kernel_backend.warmup()``) before any timed region, so compile time
never lands in the numbers.  Bit-identity is always asserted -- counts,
IOStats dicts, modelled seconds, trussness, peel rounds -- under either
tier; the ``COMPILED_MIN_SPEEDUP`` floor applies only in full mode (the
tracked target is >=3x on both benchmarks).

Skips with a reason when no compiled backend (numba or cffi) is
available on the machine, mirroring ``shm_available()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import COMPILED_MIN_SPEEDUP, QUICK, best_of

from repro.analytics import truss_decomposition
from repro.baselines.reference_impl import forward_count_scalar
from repro.core import kernel_backend
from repro.core.config import PDTLConfig
from repro.core.mgt import mgt_count
from repro.core.orientation import orient_graph
from repro.externalmem.blockio import BlockDevice
from repro.graph.binfmt import write_graph

# the mgt_counting workload from test_perf_microbench, so the compiled
# numbers are directly comparable with the tracked numpy-tier entry
_MGT_MEMORY = 256 * 1024
_BLOCK = 4096

_COMPILED_OK, _COMPILED_DETAIL = kernel_backend.compiled_available()


def _timed_under(tier: str, fn):
    """Best-of wall clock for ``fn`` with kernel tier ``tier`` active.

    The compiled tier is warmed inside ``use`` and outside the timed
    region: the first touch of a numba kernel compiles it, and that cost
    belongs to process startup, not to the benchmark.
    """
    with kernel_backend.use(tier):
        if tier != "numpy":
            kernel_backend.warmup()
        return best_of(fn)


@pytest.mark.skipif(not _COMPILED_OK, reason=f"no compiled backend: {_COMPILED_DETAIL}")
def test_compiled_kernel_speedup(perf_graph, perf_report, tmp_path_factory):
    backend = _COMPILED_DETAIL  # compiled_available() returns the tier name
    expected = forward_count_scalar(perf_graph)

    # -- MGT counting: fused block scan vs the numpy 3-pass chain ----------
    device = BlockDevice(tmp_path_factory.mktemp("mgt_compiled"), block_size=_BLOCK)
    oriented = orient_graph(write_graph(device, "g", perf_graph)).oriented
    config = PDTLConfig(memory_per_proc=_MGT_MEMORY, block_size=_BLOCK)

    mgt_numpy_wall, mgt_numpy = _timed_under("numpy", lambda: mgt_count(oriented, config))
    mgt_compiled_wall, mgt_compiled = _timed_under(
        backend, lambda: mgt_count(oriented, config)
    )

    # the tier is strictly below the accounting: identical counts, identical
    # IOStats, identical modelled seconds -- only wall clock may move
    assert mgt_numpy.triangles == expected
    assert mgt_compiled.triangles == expected
    assert mgt_compiled.io_stats.as_dict() == mgt_numpy.io_stats.as_dict()
    assert mgt_compiled.io_seconds == mgt_numpy.io_seconds
    assert mgt_compiled.iterations == mgt_numpy.iterations

    # -- truss peeling: fused level peel vs the batched numpy peeler -------
    truss_numpy_wall, truss_numpy = _timed_under(
        "numpy", lambda: truss_decomposition(perf_graph)
    )
    truss_compiled_wall, truss_compiled = _timed_under(
        backend, lambda: truss_decomposition(perf_graph)
    )

    np.testing.assert_array_equal(truss_compiled.trussness, truss_numpy.trussness)
    np.testing.assert_array_equal(truss_compiled.support, truss_numpy.support)
    assert truss_compiled.rounds == truss_numpy.rounds
    assert truss_compiled.max_k == truss_numpy.max_k

    mgt_speedup = mgt_numpy_wall / mgt_compiled_wall
    truss_speedup = truss_numpy_wall / truss_compiled_wall
    perf_report.record(
        "compiled_kernels",
        backend=backend,
        triangles=int(expected),
        mgt_memory_bytes=_MGT_MEMORY,
        mgt_numpy_wall_s=mgt_numpy_wall,
        mgt_compiled_wall_s=mgt_compiled_wall,
        mgt_speedup=mgt_speedup,
        mgt_compiled_edges_per_s=oriented.num_edges / mgt_compiled_wall,
        truss_numpy_wall_s=truss_numpy_wall,
        truss_compiled_wall_s=truss_compiled_wall,
        truss_speedup=truss_speedup,
        truss_compiled_edges_per_s=perf_graph.num_undirected_edges
        / truss_compiled_wall,
    )
    if not QUICK:
        assert mgt_speedup >= COMPILED_MIN_SPEEDUP, (
            f"compiled mgt_counting speedup {mgt_speedup:.2f}x is below the "
            f"{COMPILED_MIN_SPEEDUP}x floor"
        )
        assert truss_speedup >= COMPILED_MIN_SPEEDUP, (
            f"compiled analytics_truss speedup {truss_speedup:.2f}x is below "
            f"the {COMPILED_MIN_SPEEDUP}x floor"
        )
