"""Backend scaling: serial vs threads vs processes vs processes+shm.

The quantity this benchmark tracks is the cost of the *execution backend*
itself on one full PDTL run -- the same graph, the same dynamic chunk
schedule, the same modelled numbers (asserted bit-identical), only the
host-side execution strategy varies:

* ``serial`` / ``threads`` -- in-process references;
* ``processes`` -- the persistent-pool processes backend, every chunk task
  re-reading its memory windows from the on-disk replica (the duplicated
  host reads the shared-memory subsystem removes);
* ``processes+shm`` -- the same pool, windows sliced zero-copy from the
  published shared-memory segments (``PDTLConfig(shm=True)``);
* ``processes (fresh pool)`` -- the pre-persistent-pool regime (one
  ``ProcessPoolExecutor`` per scheduler round), kept as the historical
  baseline the PR replaced.

The workload is a *sparse* power-law graph under a small per-processor
memory budget -- the external-memory regime the paper targets, where the
per-window full-graph scans dominate and the windows no longer fit in
memory.  On dense graphs the shared intersection kernels dominate both
paths and the backend gap narrows; here the duplicated reads are the
bottleneck, which is exactly what fig3/fig10-11 measure.

In full mode the ``processes+shm`` backend must beat the plain processes
backend by at least ``BACKEND_SHM_MIN_SPEEDUP``; quick mode (CI smoke)
only asserts the count/modelled-time equivalences.  Results land in the
``backend_scaling`` section of ``BENCH_pdtl.json``.
"""

from __future__ import annotations

import time

import pytest

from conftest import BACKEND_SHM_MIN_SPEEDUP, QUICK, REPEATS

from repro.baselines.inmemory import forward_count
from repro.cluster.executor import shutdown_process_pool
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner
from repro.core.shm import shm_available
from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_degree_graph

_MEMORY = 32 * 1024  # small M -> many windows -> the read-bound regime
_BLOCK = 4096

_SHM_OK, _SHM_REASON = shm_available()


@pytest.fixture(scope="module")
def scaling_graph() -> CSRGraph:
    """Sparse power-law workload (low triangle density, pronounced tail)."""
    n = 12000 if QUICK else 40000
    return CSRGraph.from_edgelist(
        power_law_degree_graph(n, exponent=2.3, min_degree=2, max_degree=60, seed=7)
    )


def _config(shm: bool) -> PDTLConfig:
    return PDTLConfig(
        num_nodes=1,
        procs_per_node=4,
        memory_per_proc=_MEMORY,
        block_size=_BLOCK,
        modelled_cpu=True,
        scheduling="dynamic",
        shm=shm,
        # the conftest fixture pins the numpy tier in this process, but the
        # processes backends rebuild their workers from this pickled config;
        # pin it here too so every backend measures the same kernel tier
        kernel_backend="numpy",
    )


def _best_run(graph, backend: str, shm: bool, fresh_pool: bool = False):
    """Best-of-``REPEATS`` wall clock for one backend configuration."""
    best_wall = float("inf")
    result = None
    for _ in range(REPEATS):
        if fresh_pool:
            shutdown_process_pool()
        start = time.perf_counter()
        result = PDTLRunner(_config(shm), backend=backend).run(graph)
        best_wall = min(best_wall, time.perf_counter() - start)
    return best_wall, result


@pytest.mark.skipif(not _SHM_OK, reason=f"shared memory unavailable: {_SHM_REASON}")
def test_backend_scaling(scaling_graph, perf_report):
    expected = forward_count(scaling_graph)

    # warm the persistent pool and the page cache outside the timed region
    _best_run(scaling_graph, "processes", shm=False)
    _best_run(scaling_graph, "processes", shm=True)

    runs = {
        "serial": _best_run(scaling_graph, "serial", shm=False),
        "threads": _best_run(scaling_graph, "threads", shm=False),
        "processes": _best_run(scaling_graph, "processes", shm=False),
        "processes_shm": _best_run(scaling_graph, "processes", shm=True),
        "processes_fresh_pool": _best_run(
            scaling_graph, "processes", shm=False, fresh_pool=True
        ),
    }

    # every backend reports the exact same answer and the exact same
    # modelled numbers -- the backend is a host concern only
    reference = runs["serial"][1]
    for label, (_, result) in runs.items():
        assert result.triangles == expected, label
        assert result.calc_seconds == reference.calc_seconds, label
        assert result.total_io_seconds == reference.total_io_seconds, label
        assert result.total_cpu_seconds == reference.total_cpu_seconds, label
    assert runs["processes_shm"][1].shm_used
    assert not runs["processes"][1].shm_used

    edges = scaling_graph.num_undirected_edges
    speedup_vs_processes = runs["processes"][0] / runs["processes_shm"][0]
    speedup_vs_fresh = runs["processes_fresh_pool"][0] / runs["processes_shm"][0]
    perf_report.record(
        "backend_scaling",
        graph_vertices=scaling_graph.num_vertices,
        graph_edges=edges,
        triangles=int(expected),
        memory_bytes=_MEMORY,
        num_chunks=runs["serial"][1].num_chunks,
        serial_wall_s=runs["serial"][0],
        threads_wall_s=runs["threads"][0],
        processes_wall_s=runs["processes"][0],
        processes_fresh_pool_wall_s=runs["processes_fresh_pool"][0],
        processes_shm_wall_s=runs["processes_shm"][0],
        serial_edges_per_s=edges / runs["serial"][0],
        processes_edges_per_s=edges / runs["processes"][0],
        processes_shm_edges_per_s=edges / runs["processes_shm"][0],
        shm_speedup_vs_processes=speedup_vs_processes,
        shm_speedup_vs_fresh_pool=speedup_vs_fresh,
    )
    if not QUICK:
        assert speedup_vs_processes >= BACKEND_SHM_MIN_SPEEDUP, (
            f"processes+shm speedup {speedup_vs_processes:.2f}x over the "
            f"processes backend is below the {BACKEND_SHM_MIN_SPEEDUP}x floor"
        )
