"""Microbenchmarks of the vectorised hot paths, tracked in ``BENCH_pdtl.json``.

Four microbenchmarks, mirroring the layers the vectorisation PR touched:

* **extsort** -- external merge sort of the workload's (shuffled) edge
  file under a 64 KB cap: the buffered numpy merge vs the per-edge
  ``heapq`` merge it replaced, on identical run/pass structure and
  identical I/O.  The headline metric is the merge-phase speedup (run
  formation is an unchanged numpy ``lexsort`` shared by both paths).
* **baseline counting** -- the shared-kernel compact-forward count vs the
  pre-refactor per-vertex Python loops.
* **mgt counting** -- single-core MGT throughput over the on-disk graph,
  with and without the adjacency read-ahead buffer (I/O accounting must be
  identical; only wall clock may differ).
* **orientation** -- the master's preprocessing step, for trajectory
  tracking.

Every benchmark asserts exact count equality against the serial reference;
the ≥10x / ≥5x speedup floors are asserted only in full mode (the CI
perf-smoke job runs quick mode, where timings on shared runners are noisy).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import (
    BASELINE_MIN_SPEEDUP,
    EXTSORT_MIN_SPEEDUP,
    QUICK,
    REPEATS,
    best_of,
)

from repro.baselines.inmemory import forward_count
from repro.baselines.reference_impl import forward_count_scalar
from repro.core.config import PDTLConfig
from repro.core.mgt import mgt_count
from repro.core.orientation import orient_graph
from repro.externalmem.blockio import BlockDevice
from repro.externalmem.extsort import external_sort_edges, read_edge_file, write_edge_file
from repro.graph.binfmt import write_graph

_EXTSORT_MEMORY = 64 * 1024
#: fixed merge fan-in: pins the run/pass structure of the tracked workload
#: so the trajectory in BENCH_pdtl.json stays comparable across machines
#: (the derived fan-in depends on the device block size)
_EXTSORT_FAN_IN = 8
_MGT_MEMORY = 256 * 1024
_BLOCK = 4096


@pytest.fixture(scope="module")
def reference_count(perf_graph) -> int:
    return forward_count_scalar(perf_graph)


def test_extsort_throughput(perf_graph, perf_report, tmp_path_factory):
    # the oriented edge file (one record per undirected edge) in random
    # order -- the exact shape the preprocessing pipeline sorts
    from repro.core.orientation import orient_csr

    rng = np.random.default_rng(11)
    edges = orient_csr(perf_graph).edge_array()
    edges = edges[rng.permutation(edges.shape[0])]
    expected = edges[np.lexsort((edges[:, 1], edges[:, 0]))]

    results = {}
    # min-of-5 in full mode: the merge-phase ratio is asserted against a
    # hard floor, so this benchmark gets extra repetitions to shrug off
    # transient host load
    repeats = REPEATS if QUICK else max(REPEATS, 5)
    for impl in ("heapq", "vectorized"):
        best = None
        for _ in range(repeats):
            device = BlockDevice(
                tmp_path_factory.mktemp(f"extsort_{impl}"), block_size=_BLOCK
            )
            write_edge_file(device, "in.bin", edges)
            outcome = external_sort_edges(
                device, "in.bin", "out.bin", memory_bytes=_EXTSORT_MEMORY,
                fan_in=_EXTSORT_FAN_IN, merge_impl=impl,
            )
            np.testing.assert_array_equal(read_edge_file(device, "out.bin"), expected)
            if best is None or outcome.merge_seconds < best.merge_seconds:
                best = outcome
        results[impl] = best

    heap, vec = results["heapq"], results["vectorized"]
    assert (heap.num_runs, heap.merge_passes) == (vec.num_runs, vec.merge_passes)
    merge_speedup = heap.merge_seconds / vec.merge_seconds
    total_heap = heap.formation_seconds + heap.merge_seconds
    total_vec = vec.formation_seconds + vec.merge_seconds
    perf_report.record(
        "extsort",
        edges=int(edges.shape[0]),
        memory_bytes=_EXTSORT_MEMORY,
        num_runs=vec.num_runs,
        merge_passes=vec.merge_passes,
        fan_in=vec.fan_in,
        heapq_merge_s=heap.merge_seconds,
        vectorized_merge_s=vec.merge_seconds,
        merge_speedup=merge_speedup,
        heapq_total_s=total_heap,
        vectorized_total_s=total_vec,
        total_speedup=total_heap / total_vec,
        vectorized_edges_per_s=edges.shape[0] / total_vec,
    )
    if not QUICK:
        assert merge_speedup >= EXTSORT_MIN_SPEEDUP, (
            f"extsort merge speedup {merge_speedup:.1f}x below the "
            f"{EXTSORT_MIN_SPEEDUP}x floor"
        )


def test_baseline_counting_throughput(perf_graph, perf_report, reference_count):
    scalar_s, scalar_count = best_of(lambda: forward_count_scalar(perf_graph))
    vector_s, vector_count = best_of(lambda: forward_count(perf_graph))
    assert scalar_count == vector_count == reference_count
    speedup = scalar_s / vector_s
    perf_report.record(
        "baseline_counting",
        triangles=int(vector_count),
        scalar_s=scalar_s,
        vectorized_s=vector_s,
        speedup=speedup,
        edges_per_s=perf_graph.num_undirected_edges / vector_s,
    )
    if not QUICK:
        assert speedup >= BASELINE_MIN_SPEEDUP, (
            f"baseline counting speedup {speedup:.1f}x below the "
            f"{BASELINE_MIN_SPEEDUP}x floor"
        )


def test_mgt_counting_throughput(perf_graph, perf_report, reference_count, tmp_path_factory):
    device = BlockDevice(tmp_path_factory.mktemp("mgt"), block_size=_BLOCK)
    oriented = orient_graph(write_graph(device, "g", perf_graph)).oriented

    outcomes = {}
    for label, readahead in (("plain", 0), ("readahead", 1 << 20)):
        config = PDTLConfig(
            memory_per_proc=_MGT_MEMORY, block_size=_BLOCK, readahead_bytes=readahead
        )
        wall, result = best_of(lambda: mgt_count(oriented, config))
        assert result.triangles == reference_count
        outcomes[label] = (wall, result)

    plain_wall, plain = outcomes["plain"]
    ra_wall, ra = outcomes["readahead"]
    # the read-ahead buffer must be invisible to the accounting
    assert plain.io_stats.as_dict() == ra.io_stats.as_dict()
    perf_report.record(
        "mgt_counting",
        triangles=int(plain.triangles),
        memory_bytes=_MGT_MEMORY,
        iterations=plain.iterations,
        wall_s=plain_wall,
        readahead_wall_s=ra_wall,
        edges_per_s=oriented.num_edges / plain_wall,
        modelled_io_s=plain.io_seconds,
    )


def test_orientation_throughput(perf_graph, perf_report, tmp_path_factory):
    walls = []
    for i in range(REPEATS):
        device = BlockDevice(tmp_path_factory.mktemp(f"orient{i}"), block_size=_BLOCK)
        source = write_graph(device, "g", perf_graph)
        wall, orientation = best_of(
            lambda: orient_graph(source, num_workers=1, parallel=False), repeats=1
        )
        assert orientation.oriented.num_edges == perf_graph.num_undirected_edges
        walls.append(wall)
    best = min(walls)
    perf_report.record(
        "orientation",
        wall_s=best,
        edges_per_s=perf_graph.num_edges / best,
    )
