"""Preprocessing scaling: serial master pipeline vs the pool fan-out.

ROADMAP's named perf target after PR 3/4: the triangle phase scales, but
the master-side preprocessing -- degree orientation and external-sort run
formation -- still ran single-threaded through the block layer.  This
benchmark times both pipelines on the *tracked backend_scaling workload*
(the sparse power-law graph of ``test_perf_backends``):

* **serial** -- the pre-PR master path: threaded orientation
  (``parallel=True`` over the block layer... now raw reads, identical
  accounting) and ``formation="serial"`` run formation (block-layer
  window reads + ``lexsort`` per window);
* **parallel** -- the input graph published once to shared memory
  (:func:`repro.core.shm.publish_input_graph`, timed *inside* the
  parallel region, publication unlinked per repetition), orientation
  chunks fanned over the persistent process pool, and
  ``formation="parallel"`` run formation (raw window reads + packed
  radix sort in pool workers).

Bit-identity is asserted unconditionally -- oriented file bytes, sorted
output bytes and the full master IOStats dict must match between the two
pipelines before any time is reported.  The ``>= PREPROCESS_MIN_SPEEDUP``
floor on the combined orientation + run-formation phase is asserted in
full mode only (quick mode / CI smoke keeps the equivalence checks).
Results land in the ``preprocess_parallel`` section of ``BENCH_pdtl.json``.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from conftest import PREPROCESS_MIN_SPEEDUP, QUICK, REPEATS

from repro.core.orientation import orient_graph
from repro.core.shm import publish_input_graph, shm_available
from repro.externalmem.blockio import BlockDevice
from repro.externalmem.extsort import external_sort_edges, write_edge_file
from repro.graph.binfmt import write_graph
from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_degree_graph

_SORT_MEMORY = 512 * 1024  # the master's sort budget, not the per-proc M
_BLOCK = 4096
_WORKERS = 4

_SHM_OK, _SHM_REASON = shm_available()


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """The tracked backend_scaling graph, staged on a block device, plus
    its shuffled bidirectional edge file (the paper's unsorted input)."""
    n = 12000 if QUICK else 40000
    graph = CSRGraph.from_edgelist(
        power_law_degree_graph(n, exponent=2.3, min_degree=2, max_degree=60, seed=7)
    )
    device = BlockDevice(tmp_path_factory.mktemp("preprocess") / "disk", block_size=_BLOCK)
    gf = write_graph(device, "g", graph)
    edges = np.stack([graph.edge_sources(), graph.indices], axis=1)
    rng = np.random.default_rng(7)
    edges = edges[rng.permutation(edges.shape[0])]
    write_edge_file(device, "edges.bin", edges)
    return graph, device, gf


def _orient_serial(gf):
    return orient_graph(gf, num_workers=_WORKERS, parallel=True, output_name="o_serial")


def _orient_parallel(gf):
    publication = publish_input_graph(gf)
    try:
        return orient_graph(
            gf,
            num_workers=_WORKERS,
            executor="processes",
            shared=publication.descriptor,
            output_name="o_parallel",
        )
    finally:
        publication.unlink()


def _best_wall(fn):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _file_bytes(device, name):
    return device.path(name).read_bytes()


@pytest.mark.skipif(not _SHM_OK, reason=f"shared memory unavailable: {_SHM_REASON}")
def test_preprocess_parallel(workload, perf_report):
    graph, device, gf = workload

    # -- orientation: serial (threaded) vs pool fan-out ----------------------
    # warm the pool and the page cache outside the timed region
    _orient_parallel(gf)
    orient_serial_wall, orient_serial = _best_wall(lambda: _orient_serial(gf))
    orient_parallel_wall, orient_parallel = _best_wall(lambda: _orient_parallel(gf))

    # bit-identity before any timing is trusted
    for suffix in (".deg", ".adj", ".meta"):
        assert _file_bytes(device, f"o_serial{suffix}") == _file_bytes(
            device, f"o_parallel{suffix}"
        ), suffix
    np.testing.assert_array_equal(
        orient_serial.out_degrees, orient_parallel.out_degrees
    )
    # both pipelines re-ran on the same warm device, so the modelled-time
    # delta is a float subtraction from different accumulated bases; the
    # bit-exact fresh-device equality lives in the integration suite
    assert math.isclose(
        orient_serial.modelled_io_seconds,
        orient_parallel.modelled_io_seconds,
        rel_tol=1e-9,
        abs_tol=1e-12,
    )

    # -- external sort: serial vs pool run formation -------------------------
    def sort_with(formation):
        baseline = device.stats.snapshot()
        result = external_sort_edges(
            device,
            "edges.bin",
            f"sorted_{formation}.bin",
            memory_bytes=_SORT_MEMORY,
            formation=formation,
            formation_workers=_WORKERS,
        )
        return result, device.stats.delta(baseline)

    sort_with("parallel")  # warm
    best_serial_sort = best_parallel_sort = float("inf")
    for _ in range(REPEATS):
        sort_serial, stats_serial = sort_with("serial")
        best_serial_sort = min(best_serial_sort, sort_serial.formation_seconds)
        sort_parallel, stats_parallel = sort_with("parallel")
        best_parallel_sort = min(best_parallel_sort, sort_parallel.formation_seconds)
    assert _file_bytes(device, "sorted_serial.bin") == _file_bytes(
        device, "sorted_parallel.bin"
    )
    assert sort_serial.num_runs == sort_parallel.num_runs > 1
    serial_dict = stats_serial.as_dict()
    parallel_dict = stats_parallel.as_dict()
    serial_dict.pop("device_seconds"), parallel_dict.pop("device_seconds")
    assert serial_dict == parallel_dict  # counters exact; float base differs

    # -- the tracked phase: orientation + run formation ----------------------
    serial_phase = orient_serial_wall + best_serial_sort
    parallel_phase = orient_parallel_wall + best_parallel_sort
    speedup = serial_phase / parallel_phase
    entries = gf.num_edges
    perf_report.record(
        "preprocess_parallel",
        graph_vertices=graph.num_vertices,
        graph_edges=graph.num_undirected_edges,
        adjacency_entries=entries,
        sort_memory_bytes=_SORT_MEMORY,
        num_runs=sort_serial.num_runs,
        workers=_WORKERS,
        orient_serial_wall_s=orient_serial_wall,
        orient_parallel_wall_s=orient_parallel_wall,
        formation_serial_wall_s=best_serial_sort,
        formation_parallel_wall_s=best_parallel_sort,
        merge_wall_s=sort_parallel.merge_seconds,
        preprocess_serial_wall_s=serial_phase,
        preprocess_parallel_wall_s=parallel_phase,
        preprocess_edges_per_s=entries / parallel_phase,
        preprocess_speedup=speedup,
    )
    if not QUICK:
        assert speedup >= PREPROCESS_MIN_SPEEDUP, (
            f"parallel preprocessing speedup {speedup:.2f}x over the serial "
            f"master path is below the {PREPROCESS_MIN_SPEEDUP}x floor"
        )
