"""Figures 10 & 11 / Table VIII -- PDTL speed-up over single-core MGT.

Figure 10: single-node PDTL with a growing core count vs single-core MGT
(2 cores roughly halve the time; 32 cores give ~16x on Twitter in the
paper).  Figure 11: adding machines on top (speed-ups up to 55x at 4 nodes
for RMAT graphs, much less for Yahoo).  The analogue experiment measures
the calculation-time speed-up over our own single-core MGT, as the paper
does (their MGT binary misreported counts, so they compare against their
own implementation too).
"""

from __future__ import annotations

from _bench_utils import write_result

from repro.analysis.report import format_table
from repro.baselines.mgt_single import run_single_core_mgt
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner

_CORE_SWEEP = (2, 4, 8)
_NODE_SWEEP = (2, 4)
_CORES_PER_NODE = 4
_DATASETS = ("twitter", "yahoo", "rmat-12", "rmat-13")


def _pdtl_calc_seconds(graph, nodes: int, cores: int) -> tuple[float, int]:
    config = PDTLConfig(
        num_nodes=nodes,
        procs_per_node=cores,
        memory_per_proc="1MB",
        load_balanced=True,
    )
    result = PDTLRunner(config).run(graph)
    return result.calc_seconds, result.triangles


def test_fig10_11_speedup_over_mgt(benchmark, datasets, reference_counts, results_dir):
    def sweep():
        rows = []
        speedups: dict[str, dict[str, float]] = {}
        for name in _DATASETS:
            graph = datasets[name]
            baseline = run_single_core_mgt(graph, memory_per_proc="1MB")
            assert baseline.triangles == reference_counts[name]
            row: dict[str, object] = {"Graph": name, "MGT (1 core)": f"{baseline.calc_seconds:.3f}s"}
            speedups[name] = {}
            for cores in _CORE_SWEEP:
                calc, triangles = _pdtl_calc_seconds(graph, 1, cores)
                assert triangles == reference_counts[name]
                s = baseline.calc_seconds / max(calc, 1e-9)
                speedups[name][f"{cores} cores"] = s
                row[f"{cores} cores"] = f"{s:.1f}x"
            for nodes in _NODE_SWEEP:
                calc, triangles = _pdtl_calc_seconds(graph, nodes, _CORES_PER_NODE)
                assert triangles == reference_counts[name]
                s = baseline.calc_seconds / max(calc, 1e-9)
                speedups[name][f"{nodes}N"] = s
                row[f"{nodes}N x {_CORES_PER_NODE}c"] = f"{s:.1f}x"
            rows.append(row)
        return rows, speedups

    rows, speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig10_11_mgt_speedup",
        format_table(rows, title="Figures 10/11: PDTL calculation speed-up over single-core MGT"),
    )

    for name in _DATASETS:
        # parallel PDTL beats single-core MGT on every dataset at 8 cores,
        # and more parallel resources never push the speed-up below 1
        assert speedups[name]["8 cores"] > 1.0, name
        assert speedups[name]["4N"] > 1.0, name
        # speed-up grows from 2 cores to 8 cores (Figure 10's shape)
        assert speedups[name]["8 cores"] > speedups[name]["2 cores"], name
