"""Figure 4 + Table III -- distributed total time and per-node copy time.

The paper's EC2 experiment: run PDTL on 1-4 machines and report total time
(orientation + copy + calculation) together with the average time spent
copying the oriented graph to each remote node.  Expected shapes:

* total time falls as machines are added, most strongly for the RMAT
  family, least for the skewed Yahoo analogue;
* average copy time *grows* with the number of nodes (more transfers over
  the same master uplink) and with graph size.
"""

from __future__ import annotations

from _bench_utils import NODE_SWEEP, SCALING_DATASETS, write_result

from repro.analysis.report import format_seconds_cell, format_table
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner

_CORES_PER_NODE = 2
#: modest uplink so copy times are visible at analogue scale (bytes/s)
_BANDWIDTH = 20e6


def _run(graph, nodes: int):
    config = PDTLConfig(
        num_nodes=nodes,
        procs_per_node=_CORES_PER_NODE,
        memory_per_proc="2MB",
        load_balanced=True,
    )
    return PDTLRunner(config, bandwidth_bytes_per_s=_BANDWIDTH).run(graph)


def test_fig4_table3_distributed_scaling(
    benchmark, datasets, reference_counts, results_dir
):
    def sweep():
        rows = []
        copy_by_nodes: dict[str, dict[int, float]] = {}
        calc_by_nodes: dict[str, dict[int, float]] = {}
        for name in SCALING_DATASETS:
            graph = datasets[name]
            row: dict[str, object] = {"Graph": name}
            copy_by_nodes[name] = {}
            calc_by_nodes[name] = {}
            for nodes in NODE_SWEEP:
                result = _run(graph, nodes)
                assert result.triangles == reference_counts[name]
                row[f"{nodes}N total"] = format_seconds_cell(result.total_seconds)
                row[f"{nodes}N copy"] = format_seconds_cell(result.average_copy_seconds)
                copy_by_nodes[name][nodes] = result.average_copy_seconds
                calc_by_nodes[name][nodes] = result.calc_seconds
            rows.append(row)
        return rows, copy_by_nodes, calc_by_nodes

    rows, copy_by_nodes, calc_by_nodes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig4_table3_distributed",
        format_table(
            rows, title="Figure 4 / Table III: PDTL distributed total time and avg copy time"
        ),
    )

    for name in SCALING_DATASETS:
        # copy time appears once remote nodes exist and does not shrink as
        # more nodes are added (Table III's trend)
        assert copy_by_nodes[name][1] == 0.0
        assert copy_by_nodes[name][4] >= copy_by_nodes[name][2] * 0.99
        # calculation time at 4 nodes is no worse than at 1 node
        assert calc_by_nodes[name][4] <= calc_by_nodes[name][1] * 1.10

    # copy time grows with graph size (rmat-13 is the largest RMAT analogue)
    assert copy_by_nodes["rmat-13"][4] > copy_by_nodes["rmat-12"][4] * 0.9
