"""Figure 3 / Table XI -- local multicore scaling of total PDTL time.

The paper runs PDTL on a single 24-core machine with fixed total memory and
measures total time as the number of cores grows.  Expected shape: more
cores help, with diminishing returns; the scale-free Twitter/RMAT graphs
scale well, while the skewed Yahoo graph scales noticeably worse (5x at 24
cores vs 13x for the others in the paper).
"""

from __future__ import annotations

from _bench_utils import CORE_SWEEP, SCALING_DATASETS, write_result

from repro.analysis.report import format_seconds_cell, format_table
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner


def _run(graph, cores: int):
    config = PDTLConfig(
        num_nodes=1,
        procs_per_node=cores,
        memory_per_proc="2MB",
        load_balanced=True,
    )
    return PDTLRunner(config).run(graph)


def test_fig3_total_time_vs_cores(benchmark, datasets, reference_counts, results_dir):
    def sweep():
        rows = []
        speedups: dict[str, float] = {}
        for name in SCALING_DATASETS:
            graph = datasets[name]
            row: dict[str, object] = {"Graph": name}
            times = {}
            for cores in CORE_SWEEP:
                result = _run(graph, cores)
                assert result.triangles == reference_counts[name]
                times[cores] = result.calc_seconds
                row[f"{cores} cores"] = format_seconds_cell(result.total_seconds)
            speedups[name] = times[CORE_SWEEP[0]] / max(times[CORE_SWEEP[-1]], 1e-9)
            row["speedup"] = f"{speedups[name]:.1f}x"
            rows.append(row)
        return rows, speedups

    rows, speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig3_multicore_scaling",
        format_table(rows, title="Figure 3: PDTL local multicore total time"),
    )
    # shape: every graph benefits from more cores ...
    assert all(s > 1.0 for s in speedups.values())
    # ... and the skewed Yahoo analogue benefits less than the RMAT family
    assert speedups["yahoo"] <= max(speedups["rmat-12"], speedups["rmat-13"]) + 0.25
