"""Ablation -- sorted-array intersection vs hash-set membership (section IV-A1).

The paper's key implementation observation about MGT: replacing the sorted
arrays with "sets and maps of any kind, from std::unordered_set to
google::dense_hash_set" made their implementation more than 10x slower.
This ablation evaluates the same intersection workload (every oriented
edge's ``N⁺(u) ∩ E_v`` style lookup) with

* the library's vectorised sorted-array binary search (what the MGT worker
  actually executes), and
* Python ``set`` membership per element (the hash-structure alternative).

Both must produce identical counts; the timing ratio is *reported* rather
than asserted, because the paper's >10x gap is specific to C++ hash
containers (allocation churn and cache misses), whereas CPython's ``set``
is itself a tuned C structure -- at this substrate the two strategies land
within a small factor of each other.  EXPERIMENTS.md records this as a
deliberately non-asserted shape.
"""

from __future__ import annotations

import time

import numpy as np

from _bench_utils import write_result

from repro.analysis.report import format_table
from repro.core.orientation import orient_csr


def _sorted_array_intersections(oriented) -> tuple[int, float]:
    """The library's strategy: batched binary search over sorted adjacency.

    This mirrors what ``MGTWorker._process_block`` does with the whole graph
    resident: gather every pair's out-list, pack (u, w) keys, and resolve all
    memberships with one ``searchsorted`` against the sorted edge-key array.
    """
    indptr, indices = oriented.indptr, oriented.indices
    n = oriented.num_vertices
    start = time.perf_counter()
    degrees = (indptr[1:] - indptr[:-1]).astype(np.int64)
    sources = np.repeat(np.arange(n, dtype=np.int64), degrees)
    # candidate pairs (u, v): every oriented edge
    pair_u, pair_v = sources, indices
    seg_lengths = degrees[pair_v]
    total_elems = int(seg_lengths.sum())
    bounds = np.zeros(pair_v.shape[0] + 1, dtype=np.int64)
    np.cumsum(seg_lengths, out=bounds[1:])
    flat = np.repeat(indptr[pair_v] - bounds[:-1], seg_lengths) + np.arange(
        total_elems, dtype=np.int64
    )
    ev_all = indices[flat]
    pair_ids = np.repeat(np.arange(pair_v.shape[0], dtype=np.int64), seg_lengths)
    edge_keys = sources * n + indices  # sorted because adjacency is sorted
    queries = pair_u[pair_ids] * n + ev_all
    pos = np.searchsorted(edge_keys, queries)
    pos[pos >= edge_keys.shape[0]] = edge_keys.shape[0] - 1
    total = int(np.count_nonzero(edge_keys[pos] == queries))
    return total, time.perf_counter() - start


def _hash_set_intersections(oriented) -> tuple[int, float]:
    indptr, indices = oriented.indptr, oriented.indices
    start = time.perf_counter()
    adjacency_sets = [
        set(indices[indptr[u] : indptr[u + 1]].tolist())
        for u in range(oriented.num_vertices)
    ]
    total = 0
    for u in range(oriented.num_vertices):
        out_u = indices[indptr[u] : indptr[u + 1]]
        set_u = adjacency_sets[u]
        for v in out_u:
            for w in indices[indptr[v] : indptr[v + 1]].tolist():
                if w in set_u:
                    total += 1
    return total, time.perf_counter() - start


def test_ablation_sorted_arrays_vs_hash_sets(
    benchmark, datasets, reference_counts, results_dir
):
    name = "twitter"

    def run():
        oriented = orient_csr(datasets[name])
        count_sorted, sorted_seconds = _sorted_array_intersections(oriented)
        count_hash, hash_seconds = _hash_set_intersections(oriented)
        assert count_sorted == count_hash == reference_counts[name]
        return [
            {
                "Strategy": "sorted arrays (MGT's choice)",
                "seconds": round(sorted_seconds, 4),
                "triangles": count_sorted,
            },
            {
                "Strategy": "hash sets",
                "seconds": round(hash_seconds, 4),
                "triangles": count_hash,
            },
            {
                "Strategy": "slowdown of hash sets",
                "seconds": round(hash_seconds / max(sorted_seconds, 1e-9), 2),
                "triangles": None,
            },
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        results_dir,
        "ablation_intersection",
        format_table(rows, title="Ablation (section IV-A1): sorted arrays vs hash sets"),
    )
    # both strategies are exact; the timing ratio is reported (see module
    # docstring for why the paper's 10x ordering is not asserted here)
    assert rows[0]["triangles"] == rows[1]["triangles"]
    assert rows[0]["seconds"] > 0 and rows[1]["seconds"] > 0
