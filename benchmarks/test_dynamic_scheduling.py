"""Dynamic chunk scheduling vs static splits -- the Figure 9 metric, extended.

Figure 9 measures how badly a static equal-edge split loses to in-degree
load balancing on skewed graphs.  This benchmark reproduces the same
max/mean per-processor calculation-time imbalance on *hub-ordered* skewed
power-law graphs (real crawled graphs put their hubs at low vertex ids,
which is exactly when contiguous static ranges pin all the expensive
intersections on the first processors) and adds the dynamic pull-based
chunk queue as a third contender.  A failure-injection run demonstrates
the fault-tolerance half of the scheduler: a worker killed mid-run costs
some re-executed chunks but never a wrong count.

All times are modelled (``modelled_cpu=True``), so the comparison is
deterministic across hosts and repetitions.
"""

from __future__ import annotations

from _bench_utils import write_result

from repro.analysis.report import format_table, load_imbalance_table
from repro.baselines.inmemory import forward_count
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner
from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_degree_graph, relabel_by_degree

_CORES = 8
_SEEDS = (42, 7)


def _skewed_graph(seed: int) -> CSRGraph:
    edges = power_law_degree_graph(
        4000, exponent=1.8, min_degree=4, max_degree=800, seed=seed
    )
    return CSRGraph.from_edgelist(relabel_by_degree(edges))


def _config(**overrides) -> PDTLConfig:
    return PDTLConfig(
        num_nodes=1,
        procs_per_node=_CORES,
        memory_per_proc=32768,
        block_size=512,
        modelled_cpu=True,
        **overrides,
    )


def test_dynamic_scheduling_imbalance(benchmark, results_dir):
    def sweep():
        rows = []
        imbalances = {}
        for seed in _SEEDS:
            graph = _skewed_graph(seed)
            expected = forward_count(graph)

            naive = PDTLRunner(_config(load_balanced=False)).run(graph)
            balanced = PDTLRunner(_config(load_balanced=True)).run(graph)
            dynamic = PDTLRunner(
                _config(load_balanced=False, scheduling="dynamic", chunk_edges=1)
            ).run(graph)

            for result in (naive, balanced, dynamic):
                assert result.triangles == expected

            imbalances[seed] = {
                "naive static": naive.metrics.worker_imbalance(),
                "balanced static": balanced.metrics.worker_imbalance(),
                "dynamic": dynamic.metrics.worker_imbalance(),
            }
            rows.append(
                {
                    "Graph": f"power-law(seed={seed})",
                    "edges": graph.num_undirected_edges,
                    "triangles": expected,
                    "chunks": dynamic.num_chunks,
                    "steals": dynamic.metrics.total_chunks_stolen,
                    "imb naive": f"{imbalances[seed]['naive static']:.2f}x",
                    "imb balanced": f"{imbalances[seed]['balanced static']:.2f}x",
                    "imb dynamic": f"{imbalances[seed]['dynamic']:.2f}x",
                }
            )
        return rows, imbalances

    rows, imbalances = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "dynamic_scheduling",
        format_table(
            rows,
            title=(
                f"Figure 9 extension: max/mean per-processor calc-time imbalance "
                f"({_CORES} cores, hub-ordered skewed power-law)"
            ),
        ),
    )

    for seed, values in imbalances.items():
        # the headline acceptance criterion: dynamic strictly beats the
        # naive static split on every skewed graph
        assert values["dynamic"] < values["naive static"], seed
        # and it is never *worse* than the paper's in-degree balancing here
        assert values["dynamic"] <= values["balanced static"], seed


def test_dynamic_scheduling_survives_worker_failures(results_dir):
    graph = _skewed_graph(_SEEDS[0])
    expected = forward_count(graph)
    # kill two of the eight workers mid-run: worker 2 after one chunk,
    # worker 5 on its very first pull
    config = _config(
        load_balanced=False,
        scheduling="dynamic",
        chunk_edges=1,
        failure_spec={2: 1, 5: 0},
    )
    result = PDTLRunner(config).run(graph)

    assert result.triangles == expected
    assert result.metrics.total_chunks_retried >= 1
    failed = [w for w in result.workers if w.failed]
    assert len(failed) == 2
    survivors = [w for w in result.workers if not w.failed]
    assert sum(w.chunks_completed for w in survivors) >= result.num_chunks - 2

    write_result(
        results_dir,
        "dynamic_scheduling_failures",
        load_imbalance_table(
            result.metrics,
            title=(
                "Dynamic scheduling under injected failures "
                f"(workers 2 and 5 killed; {result.metrics.total_chunks_retried} "
                "chunk(s) re-executed, count exact)"
            ),
        ),
    )
