"""Theorem IV.2 / IV.3 validation and design-choice ablations.

Three studies that are not a single table or figure of the paper but back
its analysis section:

* **memory sweep** -- measured block reads of one MGT worker against the
  ``|E|²/(M·B)`` term as the memory budget shrinks (Theorem IV.2);
* **block-size sweep** -- measured blocks against the ``1/B`` factor;
* **network-traffic check** -- measured PDTL replication traffic against
  the ``Θ(N·(P+|E|) + T)`` bound of Theorem IV.3;
* **counting vs listing** -- the ``T/B`` output term: listing to disk
  performs strictly more write I/O than counting.
"""

from __future__ import annotations

import tempfile

from _bench_utils import write_result

from repro.analysis.cost_model import estimate_mgt_cost, estimate_pdtl_cost
from repro.analysis.report import format_table
from repro.core.config import PDTLConfig
from repro.core.mgt import MGTWorker
from repro.core.orientation import orient_graph
from repro.core.pdtl import PDTLRunner
from repro.core.triangles import CountingSink, FileSink
from repro.externalmem.blockio import BlockDevice
from repro.graph.binfmt import write_graph

_MEMORY_SWEEP = ("64KB", "128KB", "256KB", "1MB")
_BLOCK_SWEEP = (512, 2048, 8192)


def _oriented_on_device(graph, root, block_size=4096):
    device = BlockDevice(root, block_size=block_size)
    gf = write_graph(device, "g", graph)
    return orient_graph(gf).oriented


def test_theorem42_memory_sweep(benchmark, datasets, reference_counts, results_dir):
    name = "rmat-13"

    def sweep():
        rows = []
        with tempfile.TemporaryDirectory(prefix="bench_cost_") as root:
            oriented = _oriented_on_device(datasets[name], root)
            for memory in _MEMORY_SWEEP:
                config = PDTLConfig(memory_per_proc=memory, block_size=512)
                result = MGTWorker(oriented, config).run()
                assert result.triangles == reference_counts[name]
                estimate = estimate_mgt_cost(oriented, config)
                rows.append(
                    {
                        "Memory": memory,
                        "windows (measured)": result.iterations,
                        "windows (model)": estimate.iterations,
                        "blocks read (measured)": result.io_stats.blocks_read,
                        "blocks read (model)": round(estimate.io_blocks),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "theorem42_memory_sweep",
        format_table(rows, title=f"Theorem IV.2: I/O vs memory budget on {name}"),
    )
    # the measured window counts match the model exactly, and measured I/O
    # falls monotonically as memory grows
    assert all(r["windows (measured)"] == r["windows (model)"] for r in rows)
    measured = [r["blocks read (measured)"] for r in rows]
    assert all(a >= b for a, b in zip(measured, measured[1:]))


def test_theorem42_block_size_sweep(benchmark, datasets, reference_counts, results_dir):
    name = "rmat-12"

    def sweep():
        rows = []
        for block in _BLOCK_SWEEP:
            with tempfile.TemporaryDirectory(prefix="bench_block_") as root:
                oriented = _oriented_on_device(datasets[name], root, block_size=block)
                config = PDTLConfig(memory_per_proc="256KB", block_size=block)
                result = MGTWorker(oriented, config).run()
                assert result.triangles == reference_counts[name]
                rows.append(
                    {
                        "Block size": block,
                        "blocks read": result.io_stats.blocks_read,
                        "bytes read": result.io_stats.bytes_read,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "theorem42_block_sweep",
        format_table(rows, title=f"Theorem IV.2: block count vs block size on {name}"),
    )
    # same bytes, fewer blocks as B grows
    assert rows[0]["bytes read"] == rows[-1]["bytes read"]
    blocks = [r["blocks read"] for r in rows]
    assert all(a > b for a, b in zip(blocks, blocks[1:]))


def test_theorem43_network_traffic(benchmark, datasets, reference_counts, results_dir):
    name = "twitter"

    def sweep():
        rows = []
        graph = datasets[name]
        for nodes in (1, 2, 4):
            config = PDTLConfig(num_nodes=nodes, procs_per_node=2, memory_per_proc="1MB")
            result = PDTLRunner(config).run(graph)
            assert result.triangles == reference_counts[name]
            estimate = estimate_pdtl_cost(graph, config, num_triangles=result.triangles)
            # the bound counts elements (adjacency entries); the implementation
            # ships the oriented graph (degrees + adjacency + metadata) to the
            # N-1 remote machines, plus small per-processor control messages
            predicted_bytes = 8 * (nodes - 1) * (
                graph.num_vertices + graph.num_undirected_edges
            )
            rows.append(
                {
                    "Nodes": nodes,
                    "measured bytes": result.network_bytes,
                    "predicted bytes (N-1 graph copies)": predicted_bytes,
                    "theorem elements": round(estimate.network_traffic_elements),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "theorem43_network_traffic",
        format_table(rows, title="Theorem IV.3: PDTL network traffic vs node count"),
    )
    for row in rows:
        predicted = row["predicted bytes (N-1 graph copies)"]
        assert row["measured bytes"] >= predicted * 0.95
        assert row["measured bytes"] <= predicted * 1.05 + 20_000  # control messages


def test_counting_vs_listing_output_term(benchmark, datasets, reference_counts, results_dir):
    name = "orkut"

    def sweep():
        with tempfile.TemporaryDirectory(prefix="bench_listing_") as root:
            device = BlockDevice(root, block_size=4096)
            oriented = _oriented_on_device(datasets[name], root)
            config = PDTLConfig(memory_per_proc="1MB")

            counting = MGTWorker(oriented, config).run(CountingSink())
            sink = FileSink(device.open("triangles.bin"))
            listing = MGTWorker(oriented, config).run(sink)
            sink.flush()
            assert counting.triangles == listing.triangles == reference_counts[name]
            output_bytes = device.file_size("triangles.bin")
            return [
                {
                    "Mode": "counting",
                    "triangle output bytes": 0,
                    "blocks read": counting.io_stats.blocks_read,
                },
                {
                    "Mode": "listing (FileSink)",
                    "triangle output bytes": output_bytes,
                    "blocks read": listing.io_stats.blocks_read,
                },
            ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "counting_vs_listing",
        format_table(rows, title="Ablation: the T/B output term (counting vs listing)"),
    )
    assert rows[1]["triangle output bytes"] >= 24 * reference_counts[name]
