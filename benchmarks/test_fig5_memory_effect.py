"""Figure 5 / Tables XII-XIII -- effect of the per-node memory budget.

The paper's Local Cluster experiment fixes the cluster shape (4 or 8 nodes,
4 cores each) and varies the memory per node between 8 GB and 32 GB.  The
headline observation -- and the point of an external-memory design -- is
that the effect of limiting memory is negligible: PDTL's runtime barely
changes because each processor only ever needs its Θ(M) window plus
d*_max-sized scratch space.

Here the same experiment runs with a 4x memory gap per core; the assertion
is that the calculation time changes by far less than the memory ratio.
"""

from __future__ import annotations

from _bench_utils import write_result

from repro.analysis.report import format_seconds_cell, format_table
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner

_DATASETS = ("twitter", "yahoo", "rmat-12", "rmat-13")
_MEMORY_LEVELS = {"small (256KB/core)": "256KB", "large (2MB/core)": "2MB"}
_NODES = 4
_CORES = 4


def _run(graph, memory):
    config = PDTLConfig(
        num_nodes=_NODES,
        procs_per_node=_CORES,
        memory_per_proc=memory,
        load_balanced=True,
    )
    return PDTLRunner(config).run(graph)


def test_fig5_memory_effect(benchmark, datasets, reference_counts, results_dir):
    def sweep():
        rows = []
        ratios = {}
        for name in _DATASETS:
            graph = datasets[name]
            row: dict[str, object] = {"Graph": name}
            times = {}
            for label, memory in _MEMORY_LEVELS.items():
                result = _run(graph, memory)
                assert result.triangles == reference_counts[name]
                times[label] = result.calc_seconds
                row[label] = format_seconds_cell(result.calc_seconds)
            small = times["small (256KB/core)"]
            large = times["large (2MB/core)"]
            ratios[name] = small / max(large, 1e-9)
            row["small/large"] = f"{ratios[name]:.2f}"
            rows.append(row)
        return rows, ratios

    rows, ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig5_memory_effect",
        format_table(rows, title="Figure 5: memory budget vs calculation time (4 nodes x 4 cores)"),
    )
    # The memory budgets differ by 8x; the calculation times must differ by
    # far less than that (the paper reports a negligible effect).
    for name, ratio in ratios.items():
        assert ratio < 3.0, f"{name}: small-memory run {ratio:.2f}x slower"
