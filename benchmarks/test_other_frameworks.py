"""Section V-E4 -- PDTL vs PATRIC and CTTP (the "other frameworks").

The paper could not run PATRIC directly and instead cites its published
Twitter numbers (9m24s on 200 cores / 4GB per core) against PDTL's 4x
faster result on 96 cores with 1GB per core; CTTP, as a MapReduce system,
is dismissed as "not competitive" (92 minutes on 40 nodes).  The analogue
experiment runs our re-implementations of both on the Twitter-like graph
and reports:

* the resource-footprint comparison that drives the paper's argument
  (PATRIC's overlapping partitions need far more aggregate memory than
  PDTL's windows; CTTP's wedge shuffle dwarfs PDTL's network traffic), and
* the measured times for completeness.
"""

from __future__ import annotations

from _bench_utils import write_result

from repro.analysis.report import format_seconds_cell, format_table
from repro.baselines.cttp import run_cttp
from repro.baselines.patric import run_patric
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner

_DATASET = "twitter"
_CORES = 8


def test_other_frameworks_patric_cttp(benchmark, datasets, reference_counts, results_dir):
    def sweep():
        graph = datasets[_DATASET]
        expected = reference_counts[_DATASET]

        config = PDTLConfig(num_nodes=2, procs_per_node=_CORES // 2, memory_per_proc="512KB")
        pdtl = PDTLRunner(config).run(graph)
        assert pdtl.triangles == expected

        patric = run_patric(graph, num_processors=_CORES, memory_per_processor="64MB")
        assert patric.triangles == expected

        cttp = run_cttp(graph, num_reducers=_CORES)
        assert cttp.triangles == expected

        pdtl_peak = max(w.result.peak_memory_bytes for w in pdtl.workers)
        rows = [
            {
                "System": "PDTL (2 nodes x 4 cores)",
                "Calc": format_seconds_cell(pdtl.calc_seconds),
                "Total": format_seconds_cell(pdtl.total_seconds),
                "Peak memory/worker": pdtl_peak,
                "Network/shuffle bytes": pdtl.network_bytes,
            },
            {
                "System": f"PATRIC ({_CORES} ranks)",
                "Calc": format_seconds_cell(patric.calc_seconds),
                "Total": format_seconds_cell(patric.total_seconds),
                "Peak memory/worker": patric.peak_memory_bytes,
                "Network/shuffle bytes": patric.message_bytes,
            },
            {
                "System": f"CTTP ({_CORES} reducers)",
                "Calc": format_seconds_cell(cttp.reduce_seconds),
                "Total": format_seconds_cell(cttp.total_seconds),
                "Peak memory/worker": None,
                "Network/shuffle bytes": cttp.shuffle_bytes,
            },
        ]
        return rows, pdtl_peak, patric, cttp, pdtl

    rows, pdtl_peak, patric, cttp, pdtl = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "other_frameworks",
        format_table(rows, title="Section V-E4: PDTL vs PATRIC and CTTP (Twitter analogue)"),
    )

    # PATRIC's overlapping partitions need far more memory per worker than PDTL
    assert patric.peak_memory_bytes > 4 * pdtl_peak
    # CTTP's wedge shuffle dwarfs PDTL's replication traffic on the same graph
    assert cttp.shuffle_bytes > pdtl.network_bytes
