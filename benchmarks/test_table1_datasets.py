"""Table I -- dataset statistics (nodes, edges, triangles, degrees).

Regenerates the paper's Table I for the scaled-down analogue datasets and
prints it side by side with the paper's original values.  The absolute
sizes are of course far smaller (the point of the analogues); what must be
preserved is the *relative* structure: Yahoo sparsest with huge hubs,
Orkut denser than LiveJournal, RMAT sizes doubling per scale step.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.graph.datasets import ANALOGUE_OF, PAPER_TABLE1
from repro.graph.properties import graph_stats

from _bench_utils import BENCH_DATASETS, write_result


def test_table1_dataset_statistics(benchmark, datasets, reference_counts, results_dir):
    def build_rows():
        rows = []
        for name in BENCH_DATASETS:
            graph = datasets[name]
            stats = graph_stats(graph, name, num_triangles=reference_counts[name])
            paper = PAPER_TABLE1[ANALOGUE_OF[name]]
            rows.append(
                {
                    "Graph": name,
                    "Nodes": stats.num_vertices,
                    "Edges": stats.num_edges,
                    "Triangles": stats.num_triangles,
                    "AvDeg": round(stats.avg_degree, 1),
                    "STD": round(stats.degree_std, 1),
                    "MaxDeg": stats.max_degree,
                    "Paper graph": paper["Graph"],
                    "Paper edges": paper["Edges"],
                    "Paper triangles": paper["Triangles"],
                    "Paper AvDeg": paper["AvDeg"],
                }
            )
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    write_result(
        results_dir,
        "table1_datasets",
        format_table(rows, title="Table I (analogue datasets vs paper)"),
    )

    # structural sanity: relative shape of Table I is preserved
    by_name = {r["Graph"]: r for r in rows}
    assert by_name["yahoo"]["AvDeg"] < by_name["twitter"]["AvDeg"]
    assert by_name["orkut"]["AvDeg"] > by_name["livejournal"]["AvDeg"]
    assert by_name["rmat-10"]["Edges"] < by_name["rmat-11"]["Edges"] < by_name["rmat-12"]["Edges"]
    assert all(r["Triangles"] > 0 for r in rows)
