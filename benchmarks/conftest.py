"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section on the scaled-down analogue datasets.  Conventions:

* each benchmark prints its table (in the paper's row/column layout) and
  also appends it to ``benchmarks/results/<experiment>.txt`` so the numbers
  survive the pytest run;
* wall-clock measurements use ``benchmark.pedantic`` with a single round --
  the quantity of interest is the *relative* shape across configurations,
  not micro-timing stability;
* datasets are generated once per session and shared across modules.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from _bench_utils import BENCH_DATASETS, RESULTS_DIR  # noqa: E402

from repro.baselines.inmemory import forward_count  # noqa: E402
from repro.graph.csr import CSRGraph  # noqa: E402
from repro.graph.datasets import load_dataset  # noqa: E402


@pytest.fixture(scope="session")
def datasets() -> dict[str, CSRGraph]:
    """All analogue datasets, generated once per benchmark session."""
    return {name: load_dataset(name, seed=0) for name in BENCH_DATASETS}


@pytest.fixture(scope="session")
def reference_counts(datasets) -> dict[str, int]:
    """Reference triangle counts (used to assert correctness inside benches)."""
    return {name: forward_count(graph) for name, graph in datasets.items()}


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
