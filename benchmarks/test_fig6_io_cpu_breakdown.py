"""Figure 6 / Table VII -- total CPU vs I/O time across cores and nodes.

The paper's surprising observation: although PDTL is an external-memory
algorithm, it is *not* I/O bound -- total I/O time is a small fraction of
total CPU time, and the absolute I/O time grows as cores are added (every
processor scans the whole graph at least once).  Both properties are
checked here using the modelled device time of the simulated SSDs.
"""

from __future__ import annotations

from _bench_utils import write_result

from repro.analysis.report import format_seconds_cell, format_table
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner
from repro.externalmem.blockio import DiskModel

_CORE_SWEEP = (1, 2, 4, 8)
#: a slower disk model than the default so I/O time is visible at this scale
_DISK = DiskModel(bandwidth_bytes_per_s=50e6, seek_latency_s=5e-4)


def _run(graph, cores: int):
    config = PDTLConfig(
        num_nodes=1,
        procs_per_node=cores,
        memory_per_proc="1MB",
        load_balanced=True,
    )
    return PDTLRunner(config, disk_model=_DISK).run(graph)


def test_fig6_cpu_vs_io_breakdown(benchmark, datasets, reference_counts, results_dir):
    def sweep():
        rows = []
        series: dict[str, dict[int, tuple[float, float]]] = {}
        for name in ("twitter", "yahoo"):
            graph = datasets[name]
            series[name] = {}
            for cores in _CORE_SWEEP:
                result = _run(graph, cores)
                assert result.triangles == reference_counts[name]
                cpu = result.total_cpu_seconds
                io = result.total_io_seconds
                series[name][cores] = (cpu, io)
                rows.append(
                    {
                        "Graph": name,
                        "Cores": cores,
                        "CPU": format_seconds_cell(cpu),
                        "I/O": format_seconds_cell(io),
                        "I/O share": f"{io / max(cpu + io, 1e-12):.1%}",
                    }
                )
        return rows, series

    rows, series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig6_io_cpu_breakdown",
        format_table(rows, title="Figure 6: total CPU vs I/O time (1 node, varying cores)"),
    )

    for name, per_cores in series.items():
        # total I/O time grows (or at least does not shrink) with more cores,
        # because each additional processor re-scans the graph
        assert per_cores[8][1] >= per_cores[1][1] * 0.99, name
