"""Figure 13 / Table VI / Table XIV -- PDTL vs PowerGraph.

The paper's comparison on 4 EC2 / local-cluster nodes: calculation times
are comparable (with PDTL gaining as graphs grow), PowerGraph's setup makes
its total time >2x PDTL's, and -- most importantly -- PowerGraph runs out
of memory ("F") on the largest graphs even with ~1TB of aggregate RAM,
while PDTL finishes with ~1GB per core.

The analogue experiment fixes a per-machine memory budget and shows the
same pattern: both systems succeed on the smaller graphs, PowerGraph OOMs
on the larger ones, and PDTL completes every dataset under a budget far
below PowerGraph's requirement.
"""

from __future__ import annotations

from _bench_utils import write_result

from repro.analysis.report import format_seconds_cell, format_table
from repro.baselines.powergraph import run_powergraph
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner

_NODES = 4
_CORES = 2
#: per-machine memory for PowerGraph / per-core memory for PDTL.  Chosen so
#: the small datasets fit PowerGraph's partitions but the large ones do not,
#: reproducing the "F" rows of Table VI at analogue scale.
_PG_MEMORY = 1_600_000
_PDTL_MEMORY = 262_144

_DATASETS = ("orkut", "twitter", "yahoo", "rmat-11", "rmat-12", "rmat-13")


def test_fig13_table6_pdtl_vs_powergraph(
    benchmark, datasets, reference_counts, results_dir
):
    def sweep():
        rows = []
        pg_oom = {}
        for name in _DATASETS:
            graph = datasets[name]
            config = PDTLConfig(
                num_nodes=_NODES,
                procs_per_node=_CORES,
                memory_per_proc=_PDTL_MEMORY,
                load_balanced=True,
            )
            pdtl = PDTLRunner(config).run(graph)
            assert pdtl.triangles == reference_counts[name]
            pg = run_powergraph(graph, num_machines=_NODES, memory_per_machine=_PG_MEMORY)
            pg_oom[name] = pg.oom
            if not pg.oom:
                assert pg.triangles == reference_counts[name]
            rows.append(
                {
                    "Graph": name,
                    "PDTL calc": format_seconds_cell(pdtl.calc_seconds),
                    "PDTL total": format_seconds_cell(pdtl.total_seconds),
                    "PG calc": "F" if pg.oom else format_seconds_cell(pg.calc_seconds),
                    "PG total": "F" if pg.oom else format_seconds_cell(pg.total_seconds),
                    "PDTL peak mem/core": max(
                        w.result.peak_memory_bytes for w in pdtl.workers
                    ),
                    "PG peak mem/machine": pg.peak_memory_bytes,
                }
            )
        return rows, pg_oom

    rows, pg_oom = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig13_table6_powergraph",
        format_table(
            rows,
            title=(
                "Figure 13 / Table VI: PDTL vs PowerGraph on 4 nodes "
                f"(PG memory/machine={_PG_MEMORY}B, PDTL memory/core={_PDTL_MEMORY}B). "
                "F = out of memory"
            ),
        ),
    )

    # shape: PowerGraph fails on the largest graphs but succeeds on the small
    # ones; PDTL succeeds everywhere with a smaller per-worker footprint.
    assert not pg_oom["orkut"]
    assert pg_oom["rmat-13"] or pg_oom["yahoo"]
    for row in rows:
        assert row["PDTL peak mem/core"] <= _PDTL_MEMORY
