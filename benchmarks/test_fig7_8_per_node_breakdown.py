"""Figures 7 & 8 / Table IV -- per-node CPU and I/O breakdown.

The paper slices the distributed runs by node: for Twitter the
load-balancing works well and the per-node CPU times are close to each
other, while for the heavily skewed Yahoo graph the discrepancy between
nodes is much larger (87-130% in Table IV) and the node with the most CPU
work also performs the most I/O.  The same per-node tables are produced
here, plus the imbalance ratio that summarises them.
"""

from __future__ import annotations

from _bench_utils import write_result

from repro.analysis.report import format_seconds_cell, format_table
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner

_CORES_PER_NODE = 2


def _run(graph, nodes: int):
    config = PDTLConfig(
        num_nodes=nodes,
        procs_per_node=_CORES_PER_NODE,
        memory_per_proc="1MB",
        load_balanced=True,
    )
    return PDTLRunner(config).run(graph)


def test_fig7_8_per_node_breakdown(benchmark, datasets, reference_counts, results_dir):
    def sweep():
        rows = []
        imbalance: dict[tuple[str, int], float] = {}
        for name in ("twitter", "yahoo", "rmat-12"):
            graph = datasets[name]
            for nodes in (2, 4):
                result = _run(graph, nodes)
                assert result.triangles == reference_counts[name]
                imbalance[(name, nodes)] = result.metrics.imbalance_ratio()
                for node_row in result.node_breakdown():
                    rows.append(
                        {
                            "Graph": name,
                            "Cluster": f"{nodes} nodes",
                            "Node": int(node_row["node"]),
                            "CPU": format_seconds_cell(node_row["cpu_seconds"]),
                            "I/O": format_seconds_cell(node_row["io_seconds"]),
                            "Triangles": int(node_row["triangles"]),
                        }
                    )
        return rows, imbalance

    rows, imbalance = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(rows, title="Figures 7/8, Table IV: per-node CPU and I/O breakdown")
    summary_rows = [
        {"Graph": name, "Nodes": nodes, "max/min node calc time": f"{ratio:.2f}"}
        for (name, nodes), ratio in sorted(imbalance.items())
    ]
    summary = format_table(summary_rows, title="Per-node imbalance (max/min calculation time)")
    write_result(results_dir, "fig7_8_per_node_breakdown", table + "\n\n" + summary)

    # The paper's Yahoo-much-worse-than-Twitter ordering depends on the real
    # Yahoo webgraph's extreme skew and is only partially visible at analogue
    # scale (see EXPERIMENTS.md), so the assertions stick to the properties
    # that are deterministic here: every ratio is a valid >= 1 imbalance, the
    # breakdown covers every node, and some measurable imbalance exists on
    # the skewed real-graph analogues.
    assert all(ratio >= 1.0 for ratio in imbalance.values())
    assert len(rows) == (2 + 4) * 3  # 2-node + 4-node breakdowns for 3 graphs
    assert max(imbalance[("twitter", 4)], imbalance[("yahoo", 4)]) > 1.02
