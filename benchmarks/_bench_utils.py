"""Shared constants and helpers for the benchmark modules.

Kept outside ``conftest.py`` so benchmark modules can import them by a
unique module name regardless of how pytest assembles its rootdir.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: The datasets every comparison-style benchmark sweeps over, mapped to the
#: paper dataset each one stands in for.
BENCH_DATASETS: dict[str, str] = {
    "livejournal": "soc-LiveJournal1",
    "orkut": "com-Orkut",
    "twitter": "Twitter",
    "yahoo": "Yahoo",
    "rmat-10": "RMAT-26",
    "rmat-11": "RMAT-27",
    "rmat-12": "RMAT-28",
    "rmat-13": "RMAT-29",
}

#: Core counts standing in for the paper's {1, 2, 4, 8, 16, 24/32} sweeps.
CORE_SWEEP = (1, 2, 4, 8)
#: Node counts matching the paper's EC2 sweeps.
NODE_SWEEP = (1, 2, 3, 4)

#: Large datasets used by the distributed / scaling benchmarks (the paper's
#: Figures 3, 4, 11 focus on Twitter, Yahoo and the RMAT family).
SCALING_DATASETS = ("twitter", "yahoo", "rmat-12", "rmat-13")


def write_result(results_dir: Path, experiment: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + text)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"{experiment}.txt"
    path.write_text(text + "\n", encoding="utf-8")
