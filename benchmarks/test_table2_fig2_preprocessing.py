"""Table II + Figure 2 -- preprocessing cost.

Table II compares PDTL's orientation time against PowerGraph's setup and
OPT's database creation; Figure 2 shows how PDTL's multicore orientation
scales with the number of cores.  Here the same two views are regenerated:

* orientation wall time for 1..8 orientation workers on every dataset
  (Figure 2's series), and
* PDTL orientation vs PowerGraph setup vs OPT database creation on the
  comparison datasets (Table II's rows).

The shape to reproduce: preprocessing is a small fraction of total runtime
for PDTL, and the competing systems' setup phases are heavier because they
re-encode / replicate the whole graph rather than stream-filtering it.
"""

from __future__ import annotations

import tempfile

from _bench_utils import BENCH_DATASETS, CORE_SWEEP, write_result

from repro.analysis.report import format_seconds_cell, format_table
from repro.baselines.opt import run_opt
from repro.baselines.powergraph import run_powergraph
from repro.core.orientation import orient_graph
from repro.externalmem.blockio import BlockDevice
from repro.graph.binfmt import write_graph


def _orientation_time(graph, workers: int) -> float:
    with tempfile.TemporaryDirectory(prefix="bench_orient_") as root:
        device = BlockDevice(root, block_size=4096)
        gf = write_graph(device, "g", graph)
        result = orient_graph(gf, num_workers=workers, parallel=workers > 1)
        return result.elapsed_seconds


def test_fig2_multicore_orientation(benchmark, datasets, results_dir):
    """Figure 2: orientation time as the number of orientation workers grows."""

    def sweep():
        rows = []
        for name in ("twitter", "yahoo", "rmat-12", "rmat-13"):
            row: dict[str, object] = {"Graph": name}
            for cores in CORE_SWEEP:
                row[f"{cores} cores"] = format_seconds_cell(
                    _orientation_time(datasets[name], cores)
                )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig2_orientation_scaling",
        format_table(rows, title="Figure 2: PDTL multicore orientation time"),
    )
    assert len(rows) == 4


def test_table2_preprocessing_comparison(benchmark, datasets, results_dir):
    """Table II: PDTL orientation vs PowerGraph setup vs OPT database creation."""
    names = ("livejournal", "orkut", "twitter", "yahoo", "rmat-10")

    def sweep():
        rows = []
        for name in names:
            graph = datasets[name]
            orientation_s = _orientation_time(graph, workers=4)
            pg = run_powergraph(graph, num_machines=4, memory_per_machine="1GB")
            opt = run_opt(graph, num_threads=4)
            pdtl_output_bytes = 8 * (graph.num_vertices + graph.num_undirected_edges)
            rows.append(
                {
                    "Graph": name,
                    "PDTL orientation": format_seconds_cell(orientation_s),
                    "PowerGraph setup": format_seconds_cell(pg.setup_seconds),
                    "OPT database": format_seconds_cell(opt.database_seconds),
                    "PDTL setup output (B)": pdtl_output_bytes,
                    "PG setup memory (B)": pg.peak_memory_bytes,
                    "OPT database (B)": opt.database_bytes,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "table2_preprocessing",
        format_table(
            rows,
            title="Table II: preprocessing (PDTL orientation vs PowerGraph setup vs OPT database)",
        ),
    )
    # Shape (structural form): PDTL's preprocessing only materialises the
    # oriented graph, which is smaller than OPT's re-encoded database on every
    # dataset; PowerGraph's setup additionally replicates mirror vertices
    # across machines.  (Wall-clock orderings at analogue scale are dominated
    # by per-call overheads and are reported, not asserted.)
    for row in rows:
        assert row["OPT database (B)"] > row["PDTL setup output (B)"]
    assert sum(r["PG setup memory (B)"] for r in rows) > 0
