"""Figure 9 / Table X -- load balancing vs the naive equal-edge split.

The paper compares PDTL with its in-degree load balancing against a naive
split that gives every core the same number of edges, and reports up to 3x
faster calculation with balancing (the struggler core dominates without
it).  The balanced/naive comparison is reproduced here on two axes:

* a deterministic one -- the maximum per-worker intersection count (the
  quantity the balancer explicitly equalises), and
* the measured calculation time.
"""

from __future__ import annotations

from _bench_utils import write_result

from repro.analysis.report import format_seconds_cell, format_table
from repro.core.config import PDTLConfig
from repro.core.pdtl import PDTLRunner

_CORES = 8
_DATASETS = ("twitter", "yahoo", "rmat-12")


def _run(graph, load_balanced: bool):
    config = PDTLConfig(
        num_nodes=1,
        procs_per_node=_CORES,
        memory_per_proc="1MB",
        load_balanced=load_balanced,
    )
    return PDTLRunner(config).run(graph)


def test_fig9_load_balancing(benchmark, datasets, reference_counts, results_dir):
    def sweep():
        rows = []
        gains = {}
        for name in _DATASETS:
            graph = datasets[name]
            balanced = _run(graph, True)
            naive = _run(graph, False)
            assert balanced.triangles == reference_counts[name]
            assert naive.triangles == reference_counts[name]
            max_balanced = max(w.result.intersections for w in balanced.workers)
            max_naive = max(w.result.intersections for w in naive.workers)
            gains[name] = max_naive / max(max_balanced, 1)
            rows.append(
                {
                    "Graph": name,
                    "calc w/ LB": format_seconds_cell(balanced.calc_seconds),
                    "calc w/o LB": format_seconds_cell(naive.calc_seconds),
                    "max intersections w/ LB": max_balanced,
                    "max intersections w/o LB": max_naive,
                    "struggler reduction": f"{gains[name]:.2f}x",
                }
            )
        return rows, gains

    rows, gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig9_load_balancing",
        format_table(rows, title=f"Figure 9: load balancing vs naive split ({_CORES} cores)"),
    )

    # The balancer must not make the struggler worse on any dataset, and must
    # help on at least one of the skewed graphs.
    assert all(g >= 0.95 for g in gains.values())
    assert max(gains.values()) > 1.05
