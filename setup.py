"""Legacy setup shim: the environment has no `wheel` package, so editable
installs go through `setup.py develop` (pip --no-use-pep517)."""
from setuptools import setup

setup()
