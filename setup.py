"""Legacy setup shim: the environment has no `wheel` package, so editable
installs go through `setup.py develop` (pip --no-use-pep517)."""
from setuptools import find_packages, setup

setup(
    name="repro-pdtl",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy"],
    extras_require={
        # the optional compiled kernel tier (core/kernels_compiled.py);
        # without it the dispatch layer falls back to the cffi tier where a
        # C compiler is present, and to the always-available numpy tier
        # otherwise (see core/kernel_backend.py)
        "compiled": ["numba"],
    },
)
